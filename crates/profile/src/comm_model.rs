//! Communication latency models (paper §III-D and §IV).
//!
//! Two regimes share one type:
//!
//! * **Flat** ([`CommModel::new`]) — the paper's model verbatim: profiled
//!   intra-node tables plus the Equation (1) analytical inter-node form.
//!   This is the default and reproduces every seed figure bit-identically.
//! * **Topology-aware** ([`CommModel::with_topology`]) — collectives are
//!   priced by the `vtrain-net` algorithm library against the group's
//!   [placement](vtrain_graph::CommOp::placement): a deterministic
//!   selector picks ring, tree, or hierarchical per collective signature
//!   (payload + placement — the fields the runtime's algorithm choice
//!   actually reads), and [`CommModel::breakdown`] exposes the per-tier
//!   cost split. Intra-node collectives still go through the profiled
//!   tables in both regimes, matching the paper's methodology.

use serde::{Deserialize, Serialize};
use vtrain_gpu::comm::{all_reduce_time, ring_factor, send_recv_time, InterNodeModel};
use vtrain_graph::{CommKind, CommOp, CommScope};
use vtrain_model::{Bytes, TimeNs};
use vtrain_net::flow::{FlowPhase, FlowProgram, NetworkBackend};
use vtrain_net::{collective, Algorithm, Collective, CostBreakdown, PhaseCost, Topology};
use vtrain_parallel::ClusterSpec;

/// Sizes swept when profiling intra-node NCCL primitives (1 MB – 1024 MB,
/// the range the paper reports).
const SWEEP_MIB: [u64; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
/// Rank counts profiled (2/4/8 GPUs of one node).
const SWEEP_RANKS: [usize; 3] = [2, 4, 8];

/// The complete communication model: profiled intra-node tables plus the
/// Equation (1) analytical inter-node model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CommModel {
    /// Profiled `(ranks, [(bytes, latency)])` anchors for intra-node
    /// All-Reduce, interpolated log-linearly between anchors.
    intra_anchors: Vec<(usize, Vec<(u64, TimeNs)>)>,
    inter: InterNodeModel,
    nvlink_bus_bandwidth: f64,
    nvlink_latency: TimeNs,
    internode_bandwidth: f64,
    internode_latency: TimeNs,
    /// The interconnect hierarchy collectives are priced against.
    topology: Topology,
    /// False = the paper's flat model (default); true = route multi-tier
    /// collectives through the `vtrain-net` algorithm library.
    topology_aware: bool,
    /// Which network-cost regime estimates run under: closed-form
    /// per-collective pricing (default) or fair-sharing flow replay.
    #[serde(default)]
    backend: NetworkBackend,
}

impl CommModel {
    /// Builds the model for a cluster: sweeps intra-node NCCL All-Reduce
    /// latencies in an isolated setting (exactly the paper's methodology —
    /// and, exactly as the paper notes, therefore blind to the ~30 %
    /// contention inflation the ground-truth emulator injects), and
    /// instantiates Equation (1) with bandwidth-effectiveness `alpha`.
    pub fn new(cluster: &ClusterSpec, alpha: f64) -> Self {
        CommModel::build(cluster, alpha, cluster.topology(alpha), false)
    }

    /// Builds a topology-aware model: multi-tier collectives are priced
    /// by the `vtrain-net` algorithm library against `topology` (which
    /// may add a rack tier or differ from the cluster's default two-tier
    /// shape); intra-node collectives keep the profiled tables.
    ///
    /// `alpha` is the single §IV calibration knob: it is applied
    /// uniformly to **every tier above the node level**, superseding any
    /// per-tier `alpha` the caller set on `topology` (the same semantics
    /// [`CommModel::with_alpha`] applies during a calibration sweep).
    /// Per-tier effectiveness differences belong in the tiers'
    /// `bandwidth` values.
    pub fn with_topology(cluster: &ClusterSpec, alpha: f64, topology: Topology) -> Self {
        CommModel::build(cluster, alpha, topology.with_inter_tier_alpha(alpha), true)
    }

    /// [`CommModel::with_topology`] without the uniform α rewrite: every
    /// tier's declared `alpha` is used exactly as given (heterogeneous
    /// fabrics keep their per-tier effectiveness). The scalar
    /// [`alpha()`](CommModel::alpha) reports the inter-node tier's.
    pub fn with_topology_tiers(cluster: &ClusterSpec, topology: Topology) -> Self {
        let alpha = topology.tier(1.min(topology.num_tiers() - 1)).alpha;
        CommModel::build(cluster, alpha, topology, true)
    }

    fn build(cluster: &ClusterSpec, alpha: f64, topology: Topology, topology_aware: bool) -> Self {
        let intra_anchors = SWEEP_RANKS
            .iter()
            .map(|&ranks| {
                let anchors = SWEEP_MIB
                    .iter()
                    .map(|&mib| {
                        let bytes = Bytes::from_mib(mib);
                        let t = all_reduce_time(
                            bytes,
                            ranks,
                            cluster.nvlink_bus_bandwidth,
                            cluster.nvlink_latency,
                        );
                        (bytes.as_u64(), t)
                    })
                    .collect();
                (ranks, anchors)
            })
            .collect();
        CommModel {
            intra_anchors,
            inter: InterNodeModel::new(
                cluster.internode_bandwidth,
                alpha,
                cluster.internode_latency,
            ),
            nvlink_bus_bandwidth: cluster.nvlink_bus_bandwidth,
            nvlink_latency: cluster.nvlink_latency,
            internode_bandwidth: cluster.internode_bandwidth,
            internode_latency: cluster.internode_latency,
            topology,
            topology_aware,
            backend: NetworkBackend::default(),
        }
    }

    /// Returns a copy running under `backend`. The backend never changes
    /// what a lone collective costs (the flow replay reproduces the
    /// closed forms bit-for-bit without contention); it changes what
    /// *concurrent* collectives cost.
    pub fn with_backend(mut self, backend: NetworkBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The active network-cost regime.
    pub fn backend(&self) -> NetworkBackend {
        self.backend
    }

    /// Returns a copy with a different bandwidth-effectiveness factor
    /// (used by the §IV α-calibration sweep).
    pub fn with_alpha(&self, alpha: f64) -> Self {
        let mut out = self.clone();
        out.inter = InterNodeModel::new(self.internode_bandwidth, alpha, self.internode_latency);
        out.topology = self.topology.clone().with_inter_tier_alpha(alpha);
        out
    }

    /// The configured `α`.
    pub fn alpha(&self) -> f64 {
        self.inter.alpha
    }

    /// The interconnect hierarchy this model prices against.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// True if multi-tier collectives route through the `vtrain-net`
    /// algorithm library instead of the flat Equation (1) model.
    pub fn is_topology_aware(&self) -> bool {
        self.topology_aware
    }

    /// Latency of an intra-node All-Reduce by table interpolation
    /// (log-linear between profiled anchors; linear extrapolation
    /// outside). Boundary semantics match the flat primitives: zero
    /// bytes are free, a single rank pays one launch latency.
    pub fn intra_all_reduce(&self, bytes: Bytes, ranks: usize) -> TimeNs {
        if bytes == Bytes::ZERO {
            return TimeNs::ZERO;
        }
        if ranks <= 1 {
            return self.nvlink_latency;
        }
        let Some((_, anchors)) = self.intra_anchors.iter().find(|(r, _)| *r == ranks) else {
            // Unprofiled rank count: fall back to the ring model directly.
            return all_reduce_time(bytes, ranks, self.nvlink_bus_bandwidth, self.nvlink_latency);
        };
        interpolate(anchors, bytes.as_u64())
    }

    /// Latency of an operator from the execution graph.
    pub fn latency(&self, op: &CommOp) -> TimeNs {
        if self.topology_aware {
            return self.latency_topology(op);
        }
        match (op.kind, op.scope) {
            (CommKind::TpAllReduce, _) | (CommKind::DpAllReduce, CommScope::IntraNode) => {
                self.intra_all_reduce(op.bytes, op.ranks)
            }
            (CommKind::DpAllReduce, CommScope::InterNode) => {
                self.inter.all_reduce(op.bytes, op.ranks)
            }
            (CommKind::PpSendRecv, CommScope::IntraNode) => {
                send_recv_time(op.bytes, self.nvlink_bus_bandwidth, self.nvlink_latency)
            }
            (CommKind::PpSendRecv, CommScope::InterNode) => {
                send_recv_time(op.bytes, self.internode_bandwidth, self.internode_latency)
            }
        }
    }

    /// Topology-aware routing: intra-node collectives keep the profiled
    /// tables (the paper's methodology), multi-tier collectives go to
    /// the selected `vtrain-net` algorithm, and pipeline transfers price
    /// against the exact tier their boundary crosses.
    fn latency_topology(&self, op: &CommOp) -> TimeNs {
        match op.kind {
            CommKind::TpAllReduce | CommKind::DpAllReduce => {
                if op.placement.top_tier() == 0 {
                    self.intra_all_reduce(op.bytes, op.ranks)
                } else {
                    self.multi_tier_cost(op).total()
                }
            }
            CommKind::PpSendRecv => {
                let tier = self.topology.tier(op.placement.top_tier());
                send_recv_time(op.bytes, tier.effective_bandwidth(), tier.base_latency)
            }
        }
    }

    /// The collective algorithm the deterministic selector picks for
    /// `op`. The choice is keyed only by the fields an algorithm choice
    /// actually reads — collective class, payload, and placement — never
    /// by runtime flags (overlappability, interference groups), so two
    /// operators with equal selection signatures always agree.
    pub fn chosen_algorithm(&self, op: &CommOp) -> Algorithm {
        match op.kind {
            CommKind::PpSendRecv => Algorithm::Ring,
            CommKind::TpAllReduce | CommKind::DpAllReduce if self.topology_aware => {
                collective::select(&self.topology, op.placement, Collective::AllReduce, op.bytes)
            }
            CommKind::TpAllReduce | CommKind::DpAllReduce => Algorithm::Ring,
        }
    }

    /// Per-tier cost decomposition of `op`. Multi-tier collectives in
    /// topology-aware mode split across their phases; everything else is
    /// a single phase at the operator's top tier. The total always
    /// equals [`CommModel::latency`].
    pub fn breakdown(&self, op: &CommOp) -> CostBreakdown {
        let multi_tier = matches!(op.kind, CommKind::TpAllReduce | CommKind::DpAllReduce)
            && op.placement.top_tier() > 0;
        if self.topology_aware && multi_tier {
            return self.multi_tier_cost(op);
        }
        CostBreakdown {
            phases: vec![PhaseCost { tier: op.placement.top_tier(), time: self.latency(op) }],
        }
    }

    fn multi_tier_cost(&self, op: &CommOp) -> CostBreakdown {
        let algo = self.chosen_algorithm(op);
        collective::cost(&self.topology, op.placement, Collective::AllReduce, algo, op.bytes)
    }

    /// The flow program `op` contributes to the fair-sharing network —
    /// the same phases [`CommModel::latency`] prices, as bandwidth demand
    /// instead of a fixed cost.
    ///
    /// Returns `None` when `op` does not touch a shareable link under
    /// this model: the backend is [`NetworkBackend::ClosedForm`], the
    /// transfer is intra-node (profiled tables — the paper's methodology
    /// — or NVLink point-to-point, both opaque to the tier allocator),
    /// or the payload prices to zero. Such operators keep their
    /// closed-form latency even under fair sharing.
    pub fn flow_program(&self, op: &CommOp) -> Option<FlowProgram> {
        if self.backend != NetworkBackend::FairSharing || op.bytes == Bytes::ZERO {
            return None;
        }
        if self.topology_aware {
            return match op.kind {
                CommKind::TpAllReduce | CommKind::DpAllReduce => {
                    if op.placement.top_tier() == 0 {
                        None
                    } else {
                        let program = collective::plan(
                            &self.topology,
                            op.placement,
                            Collective::AllReduce,
                            self.chosen_algorithm(op),
                            op.bytes,
                        );
                        (!program.is_empty()).then_some(program)
                    }
                }
                CommKind::PpSendRecv => {
                    let tier = op.placement.top_tier();
                    (tier > 0).then(|| FlowProgram {
                        phases: vec![FlowPhase {
                            tier,
                            work: op.bytes.as_f64(),
                            latency_rounds: 1,
                        }],
                    })
                }
            };
        }
        // Flat regime: only the two Equation (1) inter-node paths cross a
        // shareable link. The flat pipeline path prices against the *raw*
        // inter-node bandwidth while tier 1's capacity is the effective
        // α·B, so its work is pre-scaled to drain in `bytes / B_raw` solo.
        match (op.kind, op.scope) {
            (CommKind::DpAllReduce, CommScope::InterNode) if op.ranks > 1 => Some(FlowProgram {
                phases: vec![FlowPhase {
                    tier: 1,
                    work: op.bytes.as_f64() * ring_factor(op.ranks),
                    latency_rounds: 1,
                }],
            }),
            (CommKind::PpSendRecv, CommScope::InterNode) => {
                let eff = self.topology.tier(1).effective_bandwidth();
                Some(FlowProgram {
                    phases: vec![FlowPhase {
                        tier: 1,
                        work: op.bytes.as_f64() * (eff / self.internode_bandwidth),
                        latency_rounds: 1,
                    }],
                })
            }
            _ => None,
        }
    }
}

/// Log-linear interpolation over `(bytes, latency)` anchors sorted by bytes.
fn interpolate(anchors: &[(u64, TimeNs)], bytes: u64) -> TimeNs {
    debug_assert!(!anchors.is_empty());
    let bytes = bytes.max(1);
    let first = anchors.first().expect("nonempty anchors");
    let last = anchors.last().expect("nonempty anchors");
    if bytes <= first.0 {
        // Below the sweep floor latency is launch-dominated: scale the
        // transfer share linearly, keep the floor's latency share.
        let scale = bytes as f64 / first.0 as f64;
        return first.1.scale(scale.max(0.05)).max(TimeNs::from_micros(5));
    }
    if bytes >= last.0 {
        let scale = bytes as f64 / last.0 as f64;
        return last.1.scale(scale);
    }
    let hi = anchors.iter().position(|(b, _)| *b >= bytes).expect("bytes below max anchor");
    let (b0, t0) = anchors[hi - 1];
    let (b1, t1) = anchors[hi];
    let frac = ((bytes as f64).ln() - (b0 as f64).ln()) / ((b1 as f64).ln() - (b0 as f64).ln());
    let t = t0.as_secs_f64() + frac * (t1.as_secs_f64() - t0.as_secs_f64());
    TimeNs::from_secs_f64(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CommModel {
        CommModel::new(&ClusterSpec::aws_p4d(64), 1.0)
    }

    fn op(kind: CommKind, scope: CommScope, mib: u64, ranks: usize) -> CommOp {
        use vtrain_net::GroupPlacement;
        let placement = match scope {
            CommScope::IntraNode => GroupPlacement::intra_node(ranks),
            CommScope::InterNode => {
                GroupPlacement { ranks_per_node: 1, nodes_per_rack: ranks, racks: 1 }
            }
        };
        CommOp {
            kind,
            bytes: Bytes::from_mib(mib),
            ranks,
            scope,
            placement,
            overlappable: false,
            concurrent_groups: 1,
        }
    }

    #[test]
    fn interpolation_agrees_with_anchors_exactly() {
        let m = model();
        for mib in SWEEP_MIB {
            let expect = all_reduce_time(Bytes::from_mib(mib), 8, 235e9, TimeNs::from_micros(8));
            let got = m.intra_all_reduce(Bytes::from_mib(mib), 8);
            let rel = (got.as_secs_f64() - expect.as_secs_f64()).abs() / expect.as_secs_f64();
            assert!(rel < 1e-6, "anchor {mib}MiB: got {got}, expect {expect}");
        }
    }

    #[test]
    fn inter_node_uses_equation_one() {
        let m = model();
        let o = op(CommKind::DpAllReduce, CommScope::InterNode, 512, 8);
        // 512 MiB · 2·7/8 / 100 GB/s ≈ 9.4 ms (+20 µs latency).
        let t = m.latency(&o).as_secs_f64();
        assert!((t - 0.0094).abs() < 0.0005, "got {t}");
    }

    #[test]
    fn alpha_half_doubles_inter_node_time() {
        let m = model();
        let o = op(CommKind::DpAllReduce, CommScope::InterNode, 256, 16);
        let base = m.latency(&o).as_secs_f64();
        let half = m.with_alpha(0.5).latency(&o).as_secs_f64();
        assert!((half / base - 2.0).abs() < 0.01);
    }

    #[test]
    fn alpha_does_not_touch_intra_node() {
        let m = model();
        let o = op(CommKind::TpAllReduce, CommScope::IntraNode, 64, 8);
        assert_eq!(m.latency(&o), m.with_alpha(0.3).latency(&o));
    }

    #[test]
    fn pp_send_recv_cheaper_than_all_reduce() {
        // §II-B: Send-Receive just moves the payload once; All-Reduce moves
        // ~2× across the ring.
        let m = model();
        let send = m.latency(&op(CommKind::PpSendRecv, CommScope::InterNode, 128, 2));
        let ar = m.latency(&op(CommKind::DpAllReduce, CommScope::InterNode, 128, 8));
        assert!(send < ar);
    }

    #[test]
    fn unprofiled_rank_count_falls_back_to_ring_model() {
        let m = model();
        let got = m.intra_all_reduce(Bytes::from_mib(64), 6);
        let expect = all_reduce_time(Bytes::from_mib(64), 6, 235e9, TimeNs::from_micros(8));
        assert_eq!(got, expect);
    }

    fn aware_model() -> CommModel {
        let cluster = ClusterSpec::aws_p4d(64);
        CommModel::with_topology(&cluster, 1.0, cluster.topology(1.0))
    }

    #[test]
    fn flat_is_the_default_and_aware_opts_in() {
        assert!(!model().is_topology_aware());
        assert!(aware_model().is_topology_aware());
        assert_eq!(model().topology().num_tiers(), 2);
    }

    #[test]
    fn aware_intra_node_keeps_the_profiled_tables() {
        let flat = model();
        let aware = aware_model();
        for mib in [1, 16, 256] {
            let o = op(CommKind::TpAllReduce, CommScope::IntraNode, mib, 8);
            assert_eq!(flat.latency(&o), aware.latency(&o), "intra path must stay table-driven");
        }
    }

    #[test]
    fn aware_multi_node_all_reduce_goes_hierarchical_and_beats_flat() {
        let flat = model();
        let aware = aware_model();
        // A d = 8 gradient All-Reduce with full nodes on each side: the
        // hierarchical algorithm only sends S/8 across InfiniBand.
        let mut o = op(CommKind::DpAllReduce, CommScope::InterNode, 512, 8);
        o.placement = vtrain_net::GroupPlacement { ranks_per_node: 8, nodes_per_rack: 8, racks: 1 };
        assert_eq!(aware.chosen_algorithm(&o), Algorithm::Hierarchical);
        assert!(aware.latency(&o) < flat.latency(&o));
        let b = aware.breakdown(&o);
        assert_eq!(b.total(), aware.latency(&o));
        assert!(b.phases.len() >= 3, "reduce-scatter / inter ring / all-gather phases");
    }

    #[test]
    fn aware_spread_group_falls_back_to_the_flat_ring() {
        let aware = aware_model();
        // One rank per node: nothing to reduce locally; ring at the
        // inter-node tier is exactly Equation (1).
        let o = op(CommKind::DpAllReduce, CommScope::InterNode, 256, 8);
        assert_eq!(aware.chosen_algorithm(&o), Algorithm::Ring);
        assert_eq!(aware.latency(&o), model().latency(&o));
    }

    #[test]
    fn aware_pp_transfer_prices_the_crossed_tier() {
        let aware = aware_model();
        let intra = op(CommKind::PpSendRecv, CommScope::IntraNode, 64, 2);
        let mut inter = op(CommKind::PpSendRecv, CommScope::InterNode, 64, 2);
        inter.placement = vtrain_net::GroupPlacement::pair(1);
        assert_eq!(aware.latency(&intra), model().latency(&intra));
        assert_eq!(aware.latency(&inter), model().latency(&inter));
        assert!(aware.latency(&intra) < aware.latency(&inter));
    }

    #[test]
    fn breakdown_total_always_matches_latency() {
        for m in [model(), aware_model()] {
            for (kind, scope) in [
                (CommKind::TpAllReduce, CommScope::IntraNode),
                (CommKind::DpAllReduce, CommScope::IntraNode),
                (CommKind::DpAllReduce, CommScope::InterNode),
                (CommKind::PpSendRecv, CommScope::InterNode),
            ] {
                let o = op(kind, scope, 128, 8);
                assert_eq!(m.breakdown(&o).total(), m.latency(&o), "{kind:?}/{scope:?}");
            }
        }
    }

    #[test]
    fn aware_alpha_recalibrates_the_inter_tiers() {
        let aware = aware_model();
        let mut o = op(CommKind::DpAllReduce, CommScope::InterNode, 512, 8);
        o.placement = vtrain_net::GroupPlacement { ranks_per_node: 8, nodes_per_rack: 8, racks: 1 };
        let half = aware.with_alpha(0.5);
        assert!(half.is_topology_aware(), "alpha sweep keeps the regime");
        let b_full = aware.breakdown(&o);
        let b_half = half.breakdown(&o);
        // Intra phases untouched; inter phase slower with α = 0.5.
        assert_eq!(b_full.tier_time(0), b_half.tier_time(0));
        assert!(b_half.tier_time(1) > b_full.tier_time(1));
    }

    #[test]
    fn closed_form_backend_never_emits_flow_programs() {
        for m in [model(), aware_model()] {
            assert_eq!(m.backend(), NetworkBackend::ClosedForm);
            for (kind, scope) in [
                (CommKind::TpAllReduce, CommScope::IntraNode),
                (CommKind::DpAllReduce, CommScope::InterNode),
                (CommKind::PpSendRecv, CommScope::InterNode),
            ] {
                assert!(m.flow_program(&op(kind, scope, 128, 8)).is_none());
            }
        }
    }

    #[test]
    fn solo_flow_replay_matches_latency_for_every_link_crossing_op() {
        use vtrain_net::FlowSim;
        for m in [model(), aware_model()] {
            let m = m.with_backend(NetworkBackend::FairSharing);
            let mut hier = op(CommKind::DpAllReduce, CommScope::InterNode, 512, 64);
            hier.placement =
                vtrain_net::GroupPlacement { ranks_per_node: 8, nodes_per_rack: 8, racks: 1 };
            let mut pp = op(CommKind::PpSendRecv, CommScope::InterNode, 64, 2);
            pp.placement = vtrain_net::GroupPlacement::pair(1);
            for o in [op(CommKind::DpAllReduce, CommScope::InterNode, 256, 8), hier, pp] {
                let program = m.flow_program(&o).expect("inter-node ops cross a link");
                let mut sim = FlowSim::new(m.topology());
                sim.start(TimeNs::ZERO, program);
                let done = sim.drain_all();
                let want = m.latency(&o);
                let rel = (done.as_secs_f64() - want.as_secs_f64()).abs() / want.as_secs_f64();
                assert!(rel < 1e-6, "{:?}: replay {done} vs latency {want}", o.kind);
            }
        }
    }

    #[test]
    fn intra_node_ops_stay_on_the_closed_form_even_under_fair_sharing() {
        let m = aware_model().with_backend(NetworkBackend::FairSharing);
        assert_eq!(m.backend(), NetworkBackend::FairSharing);
        assert!(m.flow_program(&op(CommKind::TpAllReduce, CommScope::IntraNode, 64, 8)).is_none());
        assert!(m.flow_program(&op(CommKind::PpSendRecv, CommScope::IntraNode, 64, 2)).is_none());
        assert!(m.flow_program(&op(CommKind::DpAllReduce, CommScope::InterNode, 0, 8)).is_none());
    }

    proptest! {
        #[test]
        fn interpolated_latency_monotone_in_bytes(a in 1u64..2048, b in 1u64..2048) {
            let m = model();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let tl = m.intra_all_reduce(Bytes::from_mib(lo), 8);
            let th = m.intra_all_reduce(Bytes::from_mib(hi), 8);
            prop_assert!(tl <= th, "{}MiB -> {}, {}MiB -> {}", lo, tl, hi, th);
        }
    }
}
