//! The shared, concurrent profile cache (paper §III-C, §III-F).
//!
//! The paper's headline sweep cost — the full `(t, d, p, m)` space in
//! under 200 s — rests on profiling each *necessary operator* once and
//! reusing it across every configuration that shares the signature. This
//! cache is that reuse made explicit: a sharded concurrent map from
//! `(GpuKey, OpSignature)` to the profiled task list, shared by every
//! worker thread of a sweep. Kernel decomposition and latency evaluation
//! run once per unique signature per GPU, not once per plan.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};
use vtrain_graph::OpSignature;
use vtrain_model::TimeNs;
use vtrain_parallel::GpuSpec;

use crate::decompose::canonical;
use crate::profiler::Profiler;
use crate::table::OpProfile;

/// Stable hashable identity of a [`GpuSpec`] (the spec itself holds `f64`
/// fields and cannot be a map key). Two specs with identical performance
/// envelopes produce identical keys — and identical profiles.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GpuKey {
    name: String,
    peak_fp16_flops: u64,
    memory_bandwidth: u64,
    memory_bytes: u64,
    sm_count: usize,
    launch_overhead_ns: u64,
}

impl GpuKey {
    /// Derives the cache key of a GPU spec (floats keyed bit-exactly).
    ///
    /// The exhaustive destructuring is deliberate: if [`GpuSpec`] grows a
    /// field, this stops compiling until the key (or the destructuring)
    /// accounts for it — two GPUs differing in a performance-relevant
    /// field must never share cached profiles.
    pub fn of(gpu: &GpuSpec) -> Self {
        let GpuSpec {
            name,
            peak_fp16_flops,
            memory_bandwidth,
            memory,
            sm_count,
            kernel_launch_overhead,
        } = gpu;
        GpuKey {
            name: name.clone(),
            peak_fp16_flops: peak_fp16_flops.to_bits(),
            memory_bandwidth: memory_bandwidth.to_bits(),
            memory_bytes: memory.as_u64(),
            sm_count: *sm_count,
            launch_overhead_ns: kernel_launch_overhead.as_nanos(),
        }
    }
}

/// Hit/miss counters of a [`ProfileCache`] (monotonic over its lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the profiler.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference `self − earlier` (for per-sweep attribution).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// The resolved profiles of one plan's necessary operators: a small
/// signature → `(total latency, kernel count)` view cheap to probe during
/// lowering, holding shared handles to the cached task lists.
#[derive(Clone, Debug, Default)]
pub struct ProfileSet {
    entries: HashMap<OpSignature, Arc<OpProfile>>,
}

impl ProfileSet {
    /// The profile of `sig`, if resolved.
    pub fn get(&self, sig: &OpSignature) -> Option<&Arc<OpProfile>> {
        self.entries.get(sig)
    }

    /// Adds (or replaces) a resolved profile, keyed by the *original*
    /// signature — used for operators evaluated inline rather than
    /// through a cache (e.g. single-kernel weight updates).
    pub fn insert(&mut self, sig: OpSignature, profile: Arc<OpProfile>) {
        self.entries.insert(sig, profile);
    }

    /// `(total latency, kernel count)` of `sig`, if resolved.
    pub fn lookup(&self, sig: &OpSignature) -> Option<(TimeNs, u32)> {
        self.entries.get(sig).map(|p| (p.total(), p.kernel_count() as u32))
    }

    /// Number of resolved signatures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is resolved.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(signature, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&OpSignature, &Arc<OpProfile>)> {
        self.entries.iter()
    }
}

const SHARDS: usize = 16;

/// First token of a snapshot header line.
const SNAPSHOT_MAGIC: &str = "vtrain-profile-snapshot";

/// Snapshot format version; bumped on any encoding change so an old
/// binary never misreads a new snapshot (or vice versa) — it cold-starts
/// instead.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Why a snapshot could not be saved or restored.
///
/// Restore failures are *expected* operational events (a crash mid-write
/// upgrade, a disk hiccup): callers log them and cold-start. None of them
/// leave the cache partially modified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot file could not be read, written, or renamed.
    Io(String),
    /// The document is truncated, checksum-failed, or unparseable.
    Corrupt(String),
    /// The header's format version is not [`SNAPSHOT_VERSION`].
    Version {
        /// The version the header claims.
        found: u64,
    },
}

impl SnapshotError {
    fn corrupt(msg: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt(msg.into())
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot I/O failure: {msg}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::Version { found } => write!(
                f,
                "snapshot version mismatch: found v{found}, this build reads v{SNAPSHOT_VERSION}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One snapshot entry: the full cache key plus the profiled task list.
#[derive(Serialize, Deserialize)]
struct SnapshotRecord {
    gpu: GpuKey,
    sig: OpSignature,
    profile: OpProfile,
}

/// FNV-1a over `bytes` — the same stable, dependency-free digest the
/// workspace uses for golden-trace and stable-key checksums.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Parses `prefix=<u64>` from an optional header field.
fn field_value(field: Option<&str>, prefix: &str) -> Option<u64> {
    field.and_then(|f| f.strip_prefix(prefix)).and_then(|v| v.parse().ok())
}

/// One cached profile plus its last-touched stamp (a tick of the cache's
/// global access epoch, updated on every hit while a capacity is set —
/// the recency the LRU eviction policy orders by).
#[derive(Debug)]
struct Entry {
    profile: Arc<OpProfile>,
    stamp: AtomicU64,
}

/// One shard of the cache: GPU → (canonical signature → entry).
/// Two-level so lookups borrow the [`GpuKey`] instead of cloning it.
type Shard = RwLock<HashMap<GpuKey, HashMap<OpSignature, Entry>>>;

/// A concurrent, sharded map from `(GpuKey, OpSignature)` to profiled
/// task lists, shared across the threads of a design-space sweep.
///
/// Reads take a shard read-lock; a miss profiles *outside* any lock and
/// inserts under the shard write-lock (first writer wins, so handed-out
/// [`Arc`]s always alias the stored profile). Profiling is deterministic,
/// so racing writers compute identical values and the race is benign.
///
/// A cache built [`with_capacity`](ProfileCache::with_capacity) evicts
/// its least-recently-used entry once inserts push it past the bound —
/// the policy a long-lived `vtrain serve` process needs to stay
/// size-bounded under unbounded tenant diversity. Eviction never changes
/// results: an evicted signature is simply re-profiled (deterministically)
/// on its next use, so a capacity-1 cache produces bit-identical sweeps,
/// only slower.
#[derive(Debug, Default)]
pub struct ProfileCache {
    shards: [Shard; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Entries currently cached (maintained on insert/evict so the
    /// capacity check never scans the shards).
    entries: AtomicUsize,
    /// Monotonic access clock; each touch stamps its entry with the next
    /// tick. Only advanced while a capacity is set.
    epoch: AtomicU64,
    capacity: Option<usize>,
}

impl ProfileCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        ProfileCache::default()
    }

    /// Creates an empty cache bounded to at most `capacity` distinct
    /// profiles (at least 1): once an insert exceeds the bound, the
    /// least-recently-used entry — globally, across all shards — is
    /// evicted and tallied in [`evictions`](ProfileCache::evictions).
    ///
    /// Concurrent inserters can transiently overshoot the bound by at
    /// most the number of racing threads; each one then evicts back down
    /// before returning.
    pub fn with_capacity(capacity: usize) -> Self {
        ProfileCache { capacity: Some(capacity.max(1)), ..ProfileCache::default() }
    }

    /// The configured capacity bound; `None` for an unbounded cache.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Entries evicted over the cache's lifetime (always 0 without a
    /// capacity).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn shard(&self, sig: &OpSignature) -> &Shard {
        // Spread by the fields that actually vary within one sweep; the
        // exact spread only affects contention, never results.
        let h = (sig.kind as usize)
            .wrapping_mul(31)
            .wrapping_add(sig.tensor)
            .wrapping_mul(31)
            .wrapping_add(sig.micro_batch)
            .wrapping_mul(31)
            .wrapping_add(sig.params as usize);
        &self.shards[h % SHARDS]
    }

    /// The profile of `sig` on `profiler`'s GPU, profiling on first use.
    ///
    /// Entries are keyed by the signature's [canonical](canonical)
    /// profiling identity, so signatures differing only in fields their
    /// decomposition never reads (e.g. the tensor degree of an embedding
    /// lookup) share one entry.
    pub fn get_or_profile(&self, profiler: &Profiler, sig: &OpSignature) -> Arc<OpProfile> {
        self.lookup(&GpuKey::of(profiler.gpu()), profiler, sig).0
    }

    /// [`ProfileCache::get_or_profile`] with a caller-derived [`GpuKey`]
    /// (skipping the per-lookup key derivation) and exact attribution:
    /// the lookup's hit or miss is *also* tallied into `local`, so a
    /// sweep worker can report precisely its own share of a cache it
    /// shares with concurrent users.
    pub fn get_with(
        &self,
        gpu: &GpuKey,
        profiler: &Profiler,
        sig: &OpSignature,
        local: &mut CacheStats,
    ) -> Arc<OpProfile> {
        let (profile, hit) = self.lookup(gpu, profiler, sig);
        if hit {
            local.hits += 1;
        } else {
            local.misses += 1;
        }
        profile
    }

    fn lookup(
        &self,
        gpu: &GpuKey,
        profiler: &Profiler,
        sig: &OpSignature,
    ) -> (Arc<OpProfile>, bool) {
        let sig = &canonical(sig);
        let shard = self.shard(sig);
        if let Some(hit) =
            shard.read().unwrap_or_else(|e| e.into_inner()).get(gpu).and_then(|m| m.get(sig))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if self.capacity.is_some() {
                // Recency stamp under the *read* lock: a relaxed store is
                // enough — a racing evictor observing the older stamp
                // merely evicts an entry that was LRU a moment ago.
                hit.stamp.store(self.epoch.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            }
            return (Arc::clone(&hit.profile), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(profiler.profile_operator(sig));
        let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
        let mut inserted = false;
        let entry = map.entry(gpu.clone()).or_default().entry(*sig).or_insert_with(|| {
            inserted = true;
            Entry {
                profile: fresh,
                stamp: AtomicU64::new(self.epoch.fetch_add(1, Ordering::Relaxed)),
            }
        });
        let profile = Arc::clone(&entry.profile);
        drop(map);
        if inserted {
            self.entries.fetch_add(1, Ordering::Relaxed);
            self.evict_over_capacity();
        }
        (profile, false)
    }

    /// Evicts globally-least-recently-used entries until the cache is
    /// back within its capacity. The victim scan takes read locks only
    /// and is O(entries) — paid once per over-capacity insert, which
    /// already paid the (much larger) profiling cost.
    fn evict_over_capacity(&self) {
        let Some(cap) = self.capacity else { return };
        while self.entries.load(Ordering::Relaxed) > cap {
            let mut victim: Option<(usize, GpuKey, OpSignature, u64)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                let map = shard.read().unwrap_or_else(|e| e.into_inner());
                for (gpu, sigs) in map.iter() {
                    for (sig, entry) in sigs {
                        let stamp = entry.stamp.load(Ordering::Relaxed);
                        if victim.as_ref().is_none_or(|v| stamp < v.3) {
                            victim = Some((si, gpu.clone(), *sig, stamp));
                        }
                    }
                }
            }
            let Some((si, gpu, sig, _)) = victim else { return };
            let mut map = self.shards[si].write().unwrap_or_else(|e| e.into_inner());
            let removed = map.get_mut(&gpu).is_some_and(|m| m.remove(&sig).is_some());
            if removed && map.get(&gpu).is_some_and(HashMap::is_empty) {
                map.remove(&gpu);
            }
            drop(map);
            if removed {
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            // A racing evictor may have removed the victim first; its
            // decrement re-drives the loop condition either way.
        }
    }

    /// Resolves every signature in `sigs`, profiling only the missing
    /// ones. The GPU key is derived once per call, not once per
    /// signature.
    pub fn resolve<'a>(
        &self,
        profiler: &Profiler,
        sigs: impl IntoIterator<Item = &'a OpSignature>,
    ) -> ProfileSet {
        let gpu = GpuKey::of(profiler.gpu());
        let entries =
            sigs.into_iter().map(|sig| (*sig, self.lookup(&gpu, profiler, sig).0)).collect();
        ProfileSet { entries }
    }

    /// Distinct profiles currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .map(HashMap::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Inserts an already-profiled entry (the snapshot restore path),
    /// keyed by the signature's canonical profiling identity. Returns
    /// `true` if the entry was new; an existing entry wins (the running
    /// cache's profile and the snapshot's are bit-identical anyway —
    /// profiling is deterministic).
    fn insert_profile(&self, gpu: GpuKey, sig: &OpSignature, profile: Arc<OpProfile>) -> bool {
        let sig = canonical(sig);
        let shard = self.shard(&sig);
        let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
        let mut inserted = false;
        map.entry(gpu).or_default().entry(sig).or_insert_with(|| {
            inserted = true;
            Entry { profile, stamp: AtomicU64::new(self.epoch.fetch_add(1, Ordering::Relaxed)) }
        });
        drop(map);
        if inserted {
            self.entries.fetch_add(1, Ordering::Relaxed);
            self.evict_over_capacity();
        }
        inserted
    }

    /// Encodes every cached profile as one deterministic snapshot
    /// document: a versioned, checksummed header line followed by one
    /// key-sorted JSON record per entry (records sorted bytewise, so two
    /// caches holding the same entries encode byte-identically regardless
    /// of insertion or shard order).
    ///
    /// The format is `vtrain-profile-snapshot v<N> entries=<n>
    /// checksum=<fnv1a64 hex of the body>`; [`ProfileCache::decode_snapshot`]
    /// (ProfileCache::decode_snapshot) verifies all three fields before
    /// touching the cache, so a truncated or corrupted snapshot is
    /// rejected whole — never partially applied.
    pub fn encode_snapshot(&self) -> String {
        let mut records: Vec<String> = Vec::new();
        for shard in &self.shards {
            let map = shard.read().unwrap_or_else(|e| e.into_inner());
            for (gpu, sigs) in map.iter() {
                for (sig, entry) in sigs {
                    let record = SnapshotRecord {
                        gpu: gpu.clone(),
                        sig: *sig,
                        profile: (*entry.profile).clone(),
                    };
                    records.push(
                        serde_json::to_string(&record)
                            .expect("snapshot records serialize infallibly"),
                    );
                }
            }
        }
        records.sort_unstable();
        let mut body = String::new();
        for r in &records {
            body.push_str(r);
            body.push('\n');
        }
        format!(
            "{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION} entries={} checksum={:016x}\n{body}",
            records.len(),
            fnv1a64(body.as_bytes()),
        )
    }

    /// Decodes `text` (an [`encode_snapshot`](ProfileCache::encode_snapshot)
    /// document) and inserts its entries, returning how many were new.
    ///
    /// Validation is all-or-nothing: the header's magic, version, entry
    /// count, and body checksum are verified — and every record parsed —
    /// *before* anything is inserted, so a failing snapshot leaves the
    /// cache exactly as it was.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Version`] for a version-mismatched header,
    /// [`SnapshotError::Corrupt`] for anything truncated, checksum-failed,
    /// or unparseable.
    pub fn decode_snapshot(&self, text: &str) -> Result<usize, SnapshotError> {
        let (header, body) =
            text.split_once('\n').ok_or_else(|| SnapshotError::corrupt("missing header line"))?;
        let mut fields = header.split(' ');
        if fields.next() != Some(SNAPSHOT_MAGIC) {
            return Err(SnapshotError::corrupt("bad magic (not a vtrain profile snapshot)"));
        }
        let version = fields
            .next()
            .and_then(|f| f.strip_prefix('v'))
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| SnapshotError::corrupt("unparseable version field"))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version { found: version });
        }
        let entries = field_value(fields.next(), "entries=")
            .ok_or_else(|| SnapshotError::corrupt("unparseable entries field"))?;
        let checksum = fields
            .next()
            .and_then(|f| f.strip_prefix("checksum="))
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| SnapshotError::corrupt("unparseable checksum field"))?;
        if fnv1a64(body.as_bytes()) != checksum {
            return Err(SnapshotError::corrupt("body checksum mismatch"));
        }
        let records: Vec<SnapshotRecord> = body
            .lines()
            .map(|line| {
                serde_json::from_str(line)
                    .map_err(|e| SnapshotError::corrupt(format!("unparseable record: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if records.len() as u64 != entries {
            return Err(SnapshotError::corrupt(format!(
                "header promises {entries} entries, body holds {}",
                records.len()
            )));
        }
        let mut inserted = 0;
        for record in records {
            if self.insert_profile(record.gpu, &record.sig, Arc::new(record.profile)) {
                inserted += 1;
            }
        }
        Ok(inserted)
    }

    /// Persists the cache crash-safely: the snapshot is written to a
    /// sibling temporary file and atomically renamed over `path`, so a
    /// crash mid-write leaves either the previous snapshot or none —
    /// never a torn one.
    ///
    /// Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the temporary file cannot be written or
    /// renamed.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        let text = self.encode_snapshot();
        let entries = self.len();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".{}.tmp", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &text)
            .map_err(|e| SnapshotError::Io(format!("cannot write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            SnapshotError::Io(format!(
                "cannot rename {} over {}: {e}",
                tmp.display(),
                path.display()
            ))
        })?;
        Ok(entries)
    }

    /// Restores a [`save_snapshot`](ProfileCache::save_snapshot) file
    /// into this cache, returning how many entries were loaded.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be read, plus everything
    /// [`decode_snapshot`](ProfileCache::decode_snapshot) rejects. The
    /// cache is untouched on any failure — callers treat that as a cold
    /// start, never a crash.
    pub fn load_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SnapshotError::Io(format!("cannot read {}: {e}", path.display())))?;
        self.decode_snapshot(&text)
    }

    /// Publishes this cache's lifetime counters into the global
    /// [`vtrain_obs`] metrics registry (`profile_cache.hits` /
    /// `.misses` / `.evictions` counters, `profile_cache.entries`
    /// gauge). No-op while observability is disabled.
    ///
    /// Registry counters are raised to the lifetime totals (a delta
    /// against the last published value), so one cache publishing
    /// repeatedly — e.g. once per sweep — never double-counts.
    pub fn publish_metrics(&self) {
        if !vtrain_obs::enabled() {
            return;
        }
        let reg = vtrain_obs::global();
        let stats = self.stats();
        let hits = reg.counter("profile_cache.hits");
        hits.add(stats.hits.saturating_sub(hits.get()));
        let misses = reg.counter("profile_cache.misses");
        misses.add(stats.misses.saturating_sub(misses.get()));
        let evictions = reg.counter("profile_cache.evictions");
        evictions.add(self.evictions().saturating_sub(evictions.get()));
        reg.gauge("profile_cache.entries").set(self.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_graph::CompKind;

    fn sig(micro_batch: usize) -> OpSignature {
        OpSignature {
            kind: CompKind::MhaFwd,
            hidden: 2048,
            heads: 16,
            seq: 1024,
            micro_batch,
            tensor: 2,
            ffn_expansion: 4,
            vocab: 0,
            params: 0,
            recompute: false,
        }
    }

    #[test]
    fn second_lookup_hits_and_aliases() {
        let cache = ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        let a = cache.get_or_profile(&profiler, &sig(1));
        let b = cache.get_or_profile(&profiler, &sig(1));
        assert!(Arc::ptr_eq(&a, &b), "hits must alias the cached profile");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_profile_is_bit_identical_to_direct_profiling() {
        let cache = ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        for m in [1, 2, 4] {
            let cached = cache.get_or_profile(&profiler, &sig(m));
            let direct = profiler.profile_operator(&sig(m));
            assert_eq!(*cached, direct);
        }
    }

    #[test]
    fn distinct_gpus_do_not_share_entries() {
        let cache = ProfileCache::new();
        let a40 = Profiler::new(GpuSpec::a100_40gb());
        let a80 = Profiler::new(GpuSpec::a100_80gb());
        let p40 = cache.get_or_profile(&a40, &sig(1));
        let p80 = cache.get_or_profile(&a80, &sig(1));
        assert_eq!(cache.len(), 2);
        // 80 GB parts have higher HBM bandwidth ⇒ faster bandwidth-bound
        // kernels; the entries must be independent.
        assert!(p80.total() <= p40.total());
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn resolve_profiles_only_missing_signatures() {
        let cache = ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        let sigs: Vec<OpSignature> = vec![sig(1), sig(2)];
        let first = cache.resolve(&profiler, &sigs);
        assert_eq!(first.len(), 2);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        let second = cache.resolve(&profiler, &sigs);
        assert_eq!(second.len(), 2);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 2 });
        assert_eq!(second.lookup(&sig(1)), first.lookup(&sig(1)));
        assert!(second.lookup(&sig(1)).unwrap().0 > TimeNs::ZERO);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = Arc::new(ProfileCache::new());
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        let totals: Vec<TimeNs> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let profiler = profiler.clone();
                    scope.spawn(move || cache.get_or_profile(&profiler, &sig(2)).total())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        assert!(totals.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert!((0.0..=1.0).contains(&stats.hit_rate()));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = ProfileCache::with_capacity(2);
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        let a = cache.get_or_profile(&profiler, &sig(1));
        let _b = cache.get_or_profile(&profiler, &sig(2));
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        let a2 = cache.get_or_profile(&profiler, &sig(1));
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = cache.get_or_profile(&profiler, &sig(4));
        assert_eq!(cache.len(), 2, "capacity bound holds");
        assert_eq!(cache.evictions(), 1);
        // `a` survived (recently used): looking it up again hits...
        let hits_before = cache.stats().hits;
        let a3 = cache.get_or_profile(&profiler, &sig(1));
        assert!(Arc::ptr_eq(&a, &a3));
        assert_eq!(cache.stats().hits, hits_before + 1);
        // ...while `b` was evicted and must re-profile (a miss).
        let misses_before = cache.stats().misses;
        let _b2 = cache.get_or_profile(&profiler, &sig(2));
        assert_eq!(cache.stats().misses, misses_before + 1);
        assert_eq!(cache.evictions(), 2, "refilling a full cache evicts again");
    }

    #[test]
    fn capacity_one_still_serves_identical_profiles() {
        let bounded = ProfileCache::with_capacity(1);
        let unbounded = ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        // Alternate signatures so every lookup on the bounded cache
        // misses; results must still be bit-identical to the unbounded
        // cache's.
        for _ in 0..3 {
            for m in [1, 2, 4] {
                let b = bounded.get_or_profile(&profiler, &sig(m));
                let u = unbounded.get_or_profile(&profiler, &sig(m));
                assert_eq!(*b, *u);
            }
        }
        assert_eq!(bounded.len(), 1);
        assert!(bounded.evictions() >= 6, "thrashing cache evicts per insert");
        assert_eq!(unbounded.evictions(), 0);
        assert_eq!(unbounded.capacity(), None);
        assert_eq!(bounded.capacity(), Some(1));
    }

    #[test]
    fn concurrent_bounded_lookups_stay_within_capacity() {
        let cache = Arc::new(ProfileCache::with_capacity(2));
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        std::thread::scope(|scope| {
            for w in 0..4 {
                let cache = Arc::clone(&cache);
                let profiler = profiler.clone();
                scope.spawn(move || {
                    for round in 0..8 {
                        let m = 1 << ((w + round) % 4);
                        let p = cache.get_or_profile(&profiler, &sig(m));
                        assert_eq!(*p, profiler.profile_operator(&sig(m)));
                    }
                });
            }
        });
        assert!(cache.len() <= 2, "settles within capacity, got {}", cache.len());
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let cache = ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        for m in [1, 2, 4] {
            cache.get_or_profile(&profiler, &sig(m));
        }
        let text = cache.encode_snapshot();
        let restored = ProfileCache::new();
        assert_eq!(restored.decode_snapshot(&text).expect("valid snapshot decodes"), 3);
        assert_eq!(restored.len(), 3);
        // Restored entries serve hits with profiles bit-identical to the
        // originals — and re-encoding is byte-identical (deterministic
        // sorted encoding).
        for m in [1, 2, 4] {
            assert_eq!(
                *restored.get_or_profile(&profiler, &sig(m)),
                *cache.get_or_profile(&profiler, &sig(m))
            );
        }
        assert_eq!(restored.stats().misses, 0, "every restored lookup hits");
        assert_eq!(restored.encode_snapshot(), text);
    }

    #[test]
    fn snapshot_rejects_corruption_without_mutating() {
        let cache = ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        cache.get_or_profile(&profiler, &sig(1));
        let text = cache.encode_snapshot();

        let fresh = ProfileCache::new();
        // Truncated mid-body: checksum (or count) mismatch.
        let truncated = &text[..text.len() - 7];
        assert!(matches!(fresh.decode_snapshot(truncated), Err(SnapshotError::Corrupt(_))));
        // One flipped body byte: checksum mismatch.
        let mut flipped = text.clone().into_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        let flipped = String::from_utf8(flipped).expect("ascii json stays utf-8");
        assert!(fresh.decode_snapshot(&flipped).is_err());
        // Future version: explicit mismatch, not a parse failure.
        let future = text.replacen(" v1 ", " v999 ", 1);
        assert_eq!(fresh.decode_snapshot(&future), Err(SnapshotError::Version { found: 999 }));
        // Not a snapshot at all.
        assert!(fresh.decode_snapshot("hello\nworld\n").is_err());
        assert!(fresh.decode_snapshot("").is_err());
        assert_eq!(fresh.len(), 0, "failed decodes never partially apply");
    }

    #[test]
    fn snapshot_save_and_load_via_tmp_rename() {
        let cache = ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        cache.get_or_profile(&profiler, &sig(2));
        let path = std::env::temp_dir()
            .join(format!("vtrain-cache-snapshot-test-{}.snap", std::process::id()));
        assert_eq!(cache.save_snapshot(&path).expect("save succeeds"), 1);
        let restored = ProfileCache::new();
        assert_eq!(restored.load_snapshot(&path).expect("load succeeds"), 1);
        assert_eq!(restored.len(), 1);
        // A second save atomically replaces the first.
        cache.get_or_profile(&profiler, &sig(4));
        assert_eq!(cache.save_snapshot(&path).expect("re-save succeeds"), 2);
        let again = ProfileCache::new();
        assert_eq!(again.load_snapshot(&path).expect("reload succeeds"), 2);
        std::fs::remove_file(&path).expect("cleanup");
        assert!(matches!(again.load_snapshot(&path), Err(SnapshotError::Io(_))));
    }

    #[test]
    fn snapshot_restore_respects_capacity() {
        let cache = ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        for m in [1, 2, 4] {
            cache.get_or_profile(&profiler, &sig(m));
        }
        let bounded = ProfileCache::with_capacity(2);
        bounded.decode_snapshot(&cache.encode_snapshot()).expect("decode into bounded cache");
        assert!(bounded.len() <= 2, "restore evicts down to capacity");
        assert!(bounded.evictions() >= 1);
    }

    #[test]
    fn stats_since_subtracts() {
        let a = CacheStats { hits: 10, misses: 4 };
        let b = CacheStats { hits: 25, misses: 5 };
        assert_eq!(b.since(&a), CacheStats { hits: 15, misses: 1 });
        assert!((b.since(&a).hit_rate() - 15.0 / 16.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
