//! The operator-to-task lookup table (paper Fig. 4, step 3).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use vtrain_gpu::Kernel;
use vtrain_graph::OpSignature;
use vtrain_model::TimeNs;

/// One profiled CUDA kernel: its CUPTI-style name and measured latency.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Kernel name as a CUPTI trace would report it.
    pub name: String,
    /// Wall-clock execution latency on the target GPU.
    pub duration: TimeNs,
}

impl TaskRecord {
    /// Creates a record from a kernel and its profiled latency.
    pub fn new(kernel: &Kernel, duration: TimeNs) -> Self {
        TaskRecord { name: kernel.name(), duration }
    }
}

/// The profiled task list of one necessary operator.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpProfile {
    /// Kernels in launch order.
    pub tasks: Vec<TaskRecord>,
}

impl OpProfile {
    /// Total latency of the operator (its kernels are launched back-to-back
    /// on one stream, so they sum).
    pub fn total(&self) -> TimeNs {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Number of kernel launches (drives the ground-truth emulator's
    /// launch-overhead accounting).
    pub fn kernel_count(&self) -> usize {
        self.tasks.len()
    }
}

/// Operator → task-list lookup table.
///
/// Keys are [`OpSignature`]s — the deduplicated *necessary operators* —
/// so the table stays O(1)-sized regardless of layer or micro-batch count
/// (paper §III-C, §III-F).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OperatorTaskTable {
    entries: HashMap<OpSignature, OpProfile>,
}

impl OperatorTaskTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        OperatorTaskTable::default()
    }

    /// Inserts (or replaces) a profile.
    pub fn insert(&mut self, sig: OpSignature, profile: OpProfile) {
        self.entries.insert(sig, profile);
    }

    /// Looks up a profile.
    pub fn get(&self, sig: &OpSignature) -> Option<&OpProfile> {
        self.entries.get(sig)
    }

    /// Total operator latency, if profiled.
    pub fn total_latency(&self, sig: &OpSignature) -> Option<TimeNs> {
        self.get(sig).map(OpProfile::total)
    }

    /// Number of profiled operators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been profiled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(signature, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&OpSignature, &OpProfile)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_gpu::KernelKind;
    use vtrain_graph::CompKind;

    fn sig() -> OpSignature {
        OpSignature {
            kind: CompKind::MhaFwd,
            hidden: 64,
            heads: 4,
            seq: 16,
            micro_batch: 1,
            tensor: 1,
            ffn_expansion: 4,
            vocab: 0,
            params: 0,
            recompute: false,
        }
    }

    #[test]
    fn profile_totals_sum_tasks() {
        let k = Kernel::new(KernelKind::Elementwise { bytes: 64 });
        let p = OpProfile {
            tasks: vec![
                TaskRecord::new(&k, TimeNs::from_micros(3)),
                TaskRecord::new(&k, TimeNs::from_micros(4)),
            ],
        };
        assert_eq!(p.total(), TimeNs::from_micros(7));
        assert_eq!(p.kernel_count(), 2);
    }

    #[test]
    fn table_round_trips() {
        let mut t = OperatorTaskTable::new();
        assert!(t.is_empty());
        t.insert(sig(), OpProfile::default());
        assert_eq!(t.len(), 1);
        assert!(t.get(&sig()).is_some());
        assert_eq!(t.total_latency(&sig()), Some(TimeNs::ZERO));
    }
}
