//! Run statistics collected by the simulation driver.

use serde::{Deserialize, Serialize};
use vtrain_model::TimeNs;

/// Counters describing one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Events dispatched to the handler.
    pub events_processed: u64,
    /// Events scheduled over the run's lifetime (including seed events).
    pub events_scheduled: u64,
    /// Simulation time of the last dispatched event.
    pub horizon: TimeNs,
}

impl RunStats {
    /// Events still pending when the run stopped (a run that drained the
    /// queue reports zero).
    ///
    /// Saturating: `Simulation::reset` restarts the queue's sequence
    /// numbering while a caller may still hold counters from before the
    /// reset, so a recycled simulation can legitimately observe
    /// `events_scheduled < events_processed` mid-composition. That reads
    /// as "nothing pending", never as an underflowed huge count.
    pub fn events_pending(&self) -> u64 {
        self.events_scheduled.saturating_sub(self.events_processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_is_the_scheduled_minus_processed_difference() {
        let stats = RunStats { events_processed: 3, events_scheduled: 10, horizon: TimeNs::ZERO };
        assert_eq!(stats.events_pending(), 7);
    }

    #[test]
    fn pending_saturates_instead_of_underflowing() {
        // The shape a recycled simulation can produce: processed counted
        // across runs, scheduled restarted by a queue clear.
        let stats = RunStats { events_processed: 10, events_scheduled: 4, horizon: TimeNs::ZERO };
        assert_eq!(stats.events_pending(), 0);
    }
}
