//! Run statistics collected by the simulation driver.

use serde::{Deserialize, Serialize};
use vtrain_model::TimeNs;

/// Counters describing one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Events dispatched to the handler.
    pub events_processed: u64,
    /// Events scheduled over the run's lifetime (including seed events).
    pub events_scheduled: u64,
    /// Simulation time of the last dispatched event.
    pub horizon: TimeNs,
}

impl RunStats {
    /// Events still pending when the run stopped (a run that drained the
    /// queue reports zero).
    pub fn events_pending(&self) -> u64 {
        self.events_scheduled - self.events_processed
    }
}
