//! # vtrain-engine
//!
//! The deterministic discrete-event simulation kernel shared by both of
//! the workspace's simulators: the Algorithm 1 single-iteration replayer
//! (`vtrain-core::simulate`) and the multi-tenant cluster scheduler
//! (`vtrain-cluster::simulate_cluster`).
//!
//! The kernel provides three things:
//!
//! * **A time-ordered event queue** ([`EventQueue`]) — a binary heap keyed
//!   by `(time, sequence)`. The explicit monotonically increasing sequence
//!   number makes equal-timestamp pops follow *insertion order*, so replay
//!   is bit-identical run to run regardless of heap internals. Scheduling
//!   every event at the same instant degrades the queue to an exact FIFO,
//!   which is precisely how the Algorithm 1 port preserves the paper's
//!   ready-queue semantics.
//! * **Typed events and pluggable handlers** — the event payload is a
//!   caller-chosen type `E`; a [`Handler`] consumes popped events and
//!   schedules follow-ups through the [`Simulation`] it is handed.
//! * **Resources** ([`resource`]) — serially reusable timelines such as a
//!   GPU's compute or communication stream, plus a counting [`resource::
//!   CapacityPool`] for cluster-style whole-GPU accounting.
//!
//! A [`Simulation`] owns the clock, the queue, run statistics
//! ([`RunStats`]), and an optional tracing hook observing every dispatched
//! event.
//!
//! # Examples
//!
//! ```
//! use vtrain_engine::{Handler, Simulation};
//! use vtrain_model::TimeNs;
//!
//! enum Ev { Ping(u32) }
//!
//! struct Echo { pings: Vec<(TimeNs, u32)> }
//!
//! impl Handler<Ev> for Echo {
//!     fn handle(&mut self, event: Ev, sim: &mut Simulation<Ev>) {
//!         let Ev::Ping(n) = event;
//!         self.pings.push((sim.now(), n));
//!         if n < 3 {
//!             sim.schedule_after(TimeNs::from_micros(1), Ev::Ping(n + 1));
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! sim.schedule(TimeNs::ZERO, Ev::Ping(1));
//! let mut echo = Echo { pings: Vec::new() };
//! sim.run(&mut echo);
//! assert_eq!(echo.pings.len(), 3);
//! assert_eq!(sim.stats().events_processed, 3);
//! assert_eq!(sim.now(), TimeNs::from_micros(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
pub mod resource;
mod sim;
mod stats;

pub use queue::{EventEntry, EventQueue};
pub use sim::{Handler, Simulation};
pub use stats::RunStats;
