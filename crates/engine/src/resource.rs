//! Serially reusable resources simulated entities contend for.
//!
//! The replayer models each GPU as a small fixed set of *streams* (compute
//! and communication), each a [`StreamTimeline`]: work placed on a stream
//! starts no earlier than both its own readiness and the stream's previous
//! completion. The cluster scheduler models the shared GPU fleet as a
//! [`CapacityPool`].

use vtrain_model::TimeNs;

/// The `[start, finish)` window a timeline granted to one piece of work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// When the work begins on the stream.
    pub start: TimeNs,
    /// When the stream becomes free again.
    pub finish: TimeNs,
}

/// A serially reusable timeline (one GPU stream): work executes one item
/// at a time, in reservation order.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamTimeline {
    available: TimeNs,
    busy: TimeNs,
}

impl StreamTimeline {
    /// A timeline that is free from time zero.
    pub fn new() -> Self {
        StreamTimeline::default()
    }

    /// Reserves the stream for `duration` starting no earlier than
    /// `ready`: the work begins at `max(ready, available)` and occupies
    /// the stream until `start + duration`.
    pub fn reserve(&mut self, ready: TimeNs, duration: TimeNs) -> Reservation {
        let start = ready.max(self.available);
        let finish = start + duration;
        self.available = finish;
        self.busy += duration;
        Reservation { start, finish }
    }

    /// Earliest time new work could begin.
    pub fn available_at(&self) -> TimeNs {
        self.available
    }

    /// Total time the stream has spent executing work.
    pub fn busy_time(&self) -> TimeNs {
        self.busy
    }
}

/// The per-device stream timelines of a simulated machine: `devices ×
/// streams_per_device` independent [`StreamTimeline`]s.
#[derive(Clone, Debug)]
pub struct TimelineSet {
    streams_per_device: usize,
    timelines: Vec<StreamTimeline>,
}

impl Default for TimelineSet {
    /// An empty set (no devices); re-shape with [`TimelineSet::reset`].
    fn default() -> Self {
        TimelineSet::new(0, 0)
    }
}

impl TimelineSet {
    /// Creates timelines for `devices` devices with `streams_per_device`
    /// streams each.
    pub fn new(devices: usize, streams_per_device: usize) -> Self {
        TimelineSet {
            streams_per_device,
            timelines: vec![StreamTimeline::new(); devices * streams_per_device],
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.timelines.len().checked_div(self.streams_per_device).unwrap_or(0)
    }

    /// Re-shapes the set to `devices × streams_per_device` fresh (free
    /// from time zero) timelines, keeping the backing allocation — the
    /// reuse hook for replay loops that simulate many machines back to
    /// back.
    pub fn reset(&mut self, devices: usize, streams_per_device: usize) {
        self.streams_per_device = streams_per_device;
        self.timelines.clear();
        self.timelines.resize(devices * streams_per_device, StreamTimeline::new());
    }

    /// Reserves `duration` on `(device, stream)` starting no earlier than
    /// `ready`.
    ///
    /// # Panics
    ///
    /// Panics if `device` or `stream` is out of range.
    pub fn reserve(
        &mut self,
        device: usize,
        stream: usize,
        ready: TimeNs,
        duration: TimeNs,
    ) -> Reservation {
        assert!(stream < self.streams_per_device, "stream {stream} out of range");
        self.timelines[device * self.streams_per_device + stream].reserve(ready, duration)
    }

    /// The `(device, stream)` timeline.
    ///
    /// # Panics
    ///
    /// Panics if `device` or `stream` is out of range.
    pub fn get(&self, device: usize, stream: usize) -> &StreamTimeline {
        assert!(stream < self.streams_per_device, "stream {stream} out of range");
        &self.timelines[device * self.streams_per_device + stream]
    }

    /// Latest completion over all timelines — the makespan of everything
    /// reserved so far.
    pub fn horizon(&self) -> TimeNs {
        self.timelines.iter().map(StreamTimeline::available_at).max().unwrap_or(TimeNs::ZERO)
    }
}

/// A counting resource: `total` interchangeable units (the cluster's
/// GPUs), of which some are granted out.
#[derive(Clone, Copy, Debug)]
pub struct CapacityPool {
    total: usize,
    in_use: usize,
}

impl CapacityPool {
    /// A pool of `total` units, all free.
    pub fn new(total: usize) -> Self {
        CapacityPool { total, in_use: 0 }
    }

    /// Units not currently granted.
    pub fn free(&self) -> usize {
        self.total - self.in_use
    }

    /// Units currently granted.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Pool size.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Takes `units` from the pool; returns false (and takes nothing) if
    /// not enough are free.
    pub fn acquire(&mut self, units: usize) -> bool {
        if units <= self.free() {
            self.in_use += units;
            true
        } else {
            false
        }
    }

    /// Returns `units` to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more units are released than were acquired.
    pub fn release(&mut self, units: usize) {
        assert!(units <= self.in_use, "released {units} of {} in use", self.in_use);
        self.in_use -= units;
    }

    /// Releases everything, returning the pool to fully free.
    pub fn release_all(&mut self) {
        self.in_use = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_serializes_work() {
        let mut s = StreamTimeline::new();
        let a = s.reserve(TimeNs::ZERO, TimeNs::from_micros(10));
        assert_eq!(a.start, TimeNs::ZERO);
        assert_eq!(a.finish, TimeNs::from_micros(10));
        // Ready earlier than the stream frees up: waits.
        let b = s.reserve(TimeNs::from_micros(2), TimeNs::from_micros(5));
        assert_eq!(b.start, TimeNs::from_micros(10));
        assert_eq!(b.finish, TimeNs::from_micros(15));
        // Ready after the stream frees up: starts at readiness (idle gap).
        let c = s.reserve(TimeNs::from_micros(20), TimeNs::from_micros(1));
        assert_eq!(c.start, TimeNs::from_micros(20));
        assert_eq!(s.busy_time(), TimeNs::from_micros(16));
        assert_eq!(s.available_at(), TimeNs::from_micros(21));
    }

    #[test]
    fn timeline_set_isolates_streams() {
        let mut set = TimelineSet::new(2, 2);
        set.reserve(0, 0, TimeNs::ZERO, TimeNs::from_micros(10));
        let comm = set.reserve(0, 1, TimeNs::ZERO, TimeNs::from_micros(3));
        assert_eq!(comm.start, TimeNs::ZERO, "streams on one device are independent");
        let other = set.reserve(1, 0, TimeNs::ZERO, TimeNs::from_micros(4));
        assert_eq!(other.start, TimeNs::ZERO, "devices are independent");
        assert_eq!(set.horizon(), TimeNs::from_micros(10));
        assert_eq!(set.get(0, 0).busy_time(), TimeNs::from_micros(10));
        assert_eq!(set.num_devices(), 2);
    }

    #[test]
    fn capacity_pool_accounts_units() {
        let mut pool = CapacityPool::new(8);
        assert!(pool.acquire(5));
        assert!(!pool.acquire(4), "over-subscription must fail");
        assert_eq!(pool.free(), 3);
        assert_eq!(pool.in_use(), 5);
        pool.release(2);
        assert_eq!(pool.free(), 5);
        pool.release_all();
        assert_eq!(pool.free(), pool.total());
    }
}
