//! The time-ordered event queue with explicit sequence-number tie-breaking.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use vtrain_model::TimeNs;

/// One scheduled event: the payload plus its dispatch key.
#[derive(Clone, Debug)]
pub struct EventEntry<E> {
    /// Dispatch time.
    pub time: TimeNs,
    /// Monotonic insertion index; the tie-breaker for equal times.
    pub seq: u64,
    /// Caller-defined payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    /// Reversed `(time, seq)` ordering, so `BinaryHeap` (a max-heap) pops
    /// the *earliest* event, and among equal times the *first inserted*.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events pop in ascending `(time, seq)` order, where `seq` is assigned at
/// insertion. Equal-timestamp events therefore pop in exactly the order
/// they were scheduled — the property the Algorithm 1 port relies on to
/// reproduce the paper's FIFO ready queue, and the property that makes
/// whole-simulation replays bit-identical.
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    /// Same-timestamp fast lane: a run of entries all sharing one dispatch
    /// time, in ascending `seq` order (guaranteed because `seq` is assigned
    /// monotonically and entries only append). Consecutive same-time pushes
    /// — the shape Algorithm 1 produces, where *every* readiness event
    /// lands on one logical tick — bypass the heap entirely, making them
    /// O(1) instead of O(log n).
    ///
    /// Correctness: pop takes the global `(time, seq)` minimum of the heap
    /// top and the lane front. The lane front is the lane's minimum (sorted
    /// by construction) and the heap top is the heap's minimum, so any
    /// partition of pending entries between the two structures dispatches
    /// in exactly the order a single heap would.
    fifo: VecDeque<EventEntry<E>>,
    next_seq: u64,
    /// Deepest the queue has ever been (pending events), across the
    /// queue's lifetime until [`EventQueue::clear`].
    max_depth: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), fifo: VecDeque::new(), next_seq: 0, max_depth: 0 }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            fifo: VecDeque::with_capacity(capacity),
            next_seq: 0,
            max_depth: 0,
        }
    }

    /// Schedules `event` at `time`, returning its sequence number.
    pub fn push(&mut self, time: TimeNs, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = EventEntry { time, seq, event };
        match self.fifo.back() {
            // Extend (or start) the same-time run; otherwise spill to the
            // heap without disturbing the active run.
            Some(back) if back.time == time => self.fifo.push_back(entry),
            None => self.fifo.push_back(entry),
            Some(_) => self.heap.push(entry),
        }
        self.max_depth = self.max_depth.max(self.len());
        seq
    }

    /// True if the earliest pending entry sits in the FIFO lane rather
    /// than the heap.
    fn fifo_is_next(&self) -> bool {
        match (self.fifo.front(), self.heap.peek()) {
            (Some(f), Some(h)) => (f.time, f.seq) < (h.time, h.seq),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        if self.fifo_is_next() {
            self.fifo.pop_front()
        } else {
            self.heap.pop()
        }
    }

    /// Dispatch time of the earliest pending event.
    pub fn peek_time(&self) -> Option<TimeNs> {
        match (self.fifo.front(), self.heap.peek()) {
            (Some(f), Some(h)) => Some(f.time.min(h.time)),
            (Some(f), None) => Some(f.time),
            (None, Some(h)) => Some(h.time),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.fifo.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.fifo.is_empty()
    }

    /// Total events ever scheduled on this queue (sequence numbers are
    /// dense, so this is the next sequence number).
    pub fn total_scheduled(&self) -> u64 {
        self.next_seq
    }

    /// The deepest the queue has ever been (maximum simultaneous pending
    /// events) since construction or the last [`EventQueue::clear`].
    pub fn high_watermark(&self) -> usize {
        self.max_depth
    }

    /// Empties the queue and restarts sequence numbering, keeping the
    /// allocations of both the heap and the FIFO lane — the reuse hook for
    /// callers that run many simulations back to back.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.fifo.clear();
        self.next_seq = 0;
        self.max_depth = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(TimeNs::from_micros(3), "c");
        q.push(TimeNs::from_micros(1), "a");
        q.push(TimeNs::from_micros(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = TimeNs::from_micros(5);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_still_respect_time_first() {
        let mut q = EventQueue::new();
        let t1 = TimeNs::from_micros(1);
        let t2 = TimeNs::from_micros(2);
        q.push(t2, 10);
        q.push(t1, 0);
        q.push(t2, 11);
        q.push(t1, 1);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![0, 1, 10, 11]);
    }

    #[test]
    fn fifo_lane_spills_and_merges_correctly() {
        // Start a same-time run, spill earlier events to the heap, extend
        // the run, and check the global (time, seq) order is preserved.
        let mut q = EventQueue::new();
        let t1 = TimeNs::from_micros(1);
        let t2 = TimeNs::from_micros(2);
        q.push(t2, "run0"); // lane
        q.push(t2, "run1"); // lane
        q.push(t1, "early0"); // heap (lane is active at t2)
        q.push(t1, "early1"); // heap
        q.push(t2, "run2"); // lane append
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(t1));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["early0", "early1", "run0", "run1", "run2"]);
    }

    #[test]
    fn draining_lane_starts_fresh_run_at_new_time() {
        let mut q = EventQueue::new();
        let t1 = TimeNs::from_micros(1);
        let t2 = TimeNs::from_micros(2);
        q.push(t1, 1);
        assert_eq!(q.pop().unwrap().event, 1);
        // Lane drained: a new run may begin at a different time.
        q.push(t2, 2);
        q.push(t2, 3);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(TimeNs::ZERO, ());
        q.push(TimeNs::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_scheduled(), 2);
        assert_eq!(q.peek_time(), Some(TimeNs::ZERO));
        q.pop();
        q.pop();
        assert!(q.pop().is_none());
        assert_eq!(q.total_scheduled(), 2);
    }

    #[test]
    fn high_watermark_tracks_peak_depth_and_clears() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_watermark(), 0);
        q.push(TimeNs::ZERO, 1);
        q.push(TimeNs::ZERO, 2);
        q.push(TimeNs::from_micros(1), 3);
        assert_eq!(q.high_watermark(), 3);
        q.pop();
        q.pop();
        // Draining does not lower the watermark …
        assert_eq!(q.high_watermark(), 3);
        q.push(TimeNs::from_micros(2), 4);
        assert_eq!(q.high_watermark(), 3, "depth 2 never beats the old peak");
        // … but a clear restarts it with the sequence numbering.
        q.clear();
        assert_eq!(q.high_watermark(), 0);
        q.push(TimeNs::ZERO, 5);
        assert_eq!(q.high_watermark(), 1);
    }
}
