//! The simulation driver: clock, event dispatch, tracing, statistics.

use vtrain_model::TimeNs;

use crate::queue::EventQueue;
use crate::stats::RunStats;

/// Consumes dispatched events and schedules follow-ups.
///
/// Handler state lives outside the [`Simulation`], so the handler may
/// freely schedule new events and read the clock while it runs.
pub trait Handler<E> {
    /// Reacts to one event. `sim.now()` is the event's dispatch time.
    fn handle(&mut self, event: E, sim: &mut Simulation<E>);
}

/// Tracing hook observing every dispatched event: `(time, seq, &event)`.
pub type TraceHook<E> = Box<dyn FnMut(TimeNs, u64, &E)>;

/// A discrete-event simulation: clock + event queue + statistics.
///
/// Determinism contract: given the same seed events and a deterministic
/// handler, every run dispatches the identical event sequence — the queue
/// breaks equal-time ties by insertion order, and the driver adds no other
/// source of ordering.
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: TimeNs,
    stats: RunStats,
    stopped: bool,
    trace: Option<TraceHook<E>>,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Simulation::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: TimeNs::ZERO,
            stats: RunStats::default(),
            stopped: false,
            trace: None,
        }
    }

    /// Creates an empty simulation with queue room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Simulation { queue: EventQueue::with_capacity(capacity), ..Simulation::new() }
    }

    /// Current simulation time: the dispatch time of the event being
    /// handled, or the last handled event after the run ends.
    pub fn now(&self) -> TimeNs {
        self.now
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current simulation time: the past is
    /// immutable in a causal simulation.
    pub fn schedule(&mut self, time: TimeNs, event: E) {
        assert!(time >= self.now, "cannot schedule into the past: {time} < now {}", self.now);
        self.queue.push(time, event);
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: TimeNs, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Requests the run loop to stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Installs a tracing hook observing every dispatched event.
    pub fn set_trace(&mut self, hook: TraceHook<E>) {
        self.trace = Some(hook);
    }

    /// Removes the tracing hook, returning it.
    pub fn take_trace(&mut self) -> Option<TraceHook<E>> {
        self.trace.take()
    }

    /// Events pending in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Statistics for the run so far.
    pub fn stats(&self) -> RunStats {
        RunStats { events_scheduled: self.queue.total_scheduled(), ..self.stats }
    }

    /// Resets the simulation to time zero with an empty queue and fresh
    /// statistics, keeping the queue's allocations. Equivalent to
    /// replacing the simulation with a new one, minus the reallocation —
    /// the reuse hook for replay loops that simulate many graphs back to
    /// back (the design-space sweep's per-thread scratch).
    pub fn reset(&mut self) {
        self.queue.clear();
        self.now = TimeNs::ZERO;
        self.stats = RunStats::default();
        self.stopped = false;
    }

    /// Dispatches the single earliest event to `handler`. Returns false if
    /// the queue was empty or the simulation was stopped.
    pub fn step(&mut self, handler: &mut impl Handler<E>) -> bool {
        if self.stopped {
            return false;
        }
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.time >= self.now, "event queue went back in time");
        self.now = entry.time;
        self.stats.events_processed += 1;
        self.stats.horizon = self.stats.horizon.max(entry.time);
        if let Some(hook) = self.trace.as_mut() {
            hook(entry.time, entry.seq, &entry.event);
        }
        handler.handle(entry.event, self);
        true
    }

    /// Runs until the queue drains or [`Simulation::stop`] is called,
    /// returning the final statistics.
    pub fn run(&mut self, handler: &mut impl Handler<E>) -> RunStats {
        while self.step(handler) {}
        let stats = self.stats();
        // One relaxed load when observability is off; publishing happens
        // once per run, never inside the dispatch loop.
        if vtrain_obs::enabled() {
            let reg = vtrain_obs::global();
            reg.counter("engine.runs").inc();
            reg.counter("engine.events_processed").add(stats.events_processed);
            reg.histogram("engine.queue_depth_peak").record(self.queue.high_watermark() as u64);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(TimeNs, u32)>,
    }

    impl Handler<Ev> for Recorder {
        fn handle(&mut self, event: Ev, sim: &mut Simulation<Ev>) {
            match event {
                Ev::Tick(n) => {
                    self.seen.push((sim.now(), n));
                    if n < 4 {
                        sim.schedule_after(TimeNs::from_micros(2), Ev::Tick(n + 1));
                    }
                }
                Ev::Stop => sim.stop(),
            }
        }
    }

    #[test]
    fn clock_follows_events_and_stats_count() {
        let mut sim = Simulation::new();
        sim.schedule(TimeNs::from_micros(1), Ev::Tick(1));
        let mut rec = Recorder::default();
        let stats = sim.run(&mut rec);
        assert_eq!(
            rec.seen,
            vec![
                (TimeNs::from_micros(1), 1),
                (TimeNs::from_micros(3), 2),
                (TimeNs::from_micros(5), 3),
                (TimeNs::from_micros(7), 4),
            ]
        );
        assert_eq!(stats.events_processed, 4);
        assert_eq!(stats.events_scheduled, 4);
        assert_eq!(stats.events_pending(), 0);
        assert_eq!(stats.horizon, TimeNs::from_micros(7));
    }

    #[test]
    fn stop_halts_before_remaining_events() {
        let mut sim = Simulation::new();
        sim.schedule(TimeNs::from_micros(1), Ev::Stop);
        sim.schedule(TimeNs::from_micros(2), Ev::Tick(1));
        let mut rec = Recorder::default();
        let stats = sim.run(&mut rec);
        assert!(rec.seen.is_empty());
        assert_eq!(stats.events_processed, 1);
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Rewinder;
        impl Handler<Ev> for Rewinder {
            fn handle(&mut self, _event: Ev, sim: &mut Simulation<Ev>) {
                sim.schedule(TimeNs::ZERO, Ev::Tick(0));
            }
        }
        let mut sim = Simulation::new();
        sim.schedule(TimeNs::from_micros(5), Ev::Tick(1));
        sim.run(&mut Rewinder);
    }

    #[test]
    fn trace_hook_sees_every_dispatch() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let log: Rc<RefCell<Vec<(TimeNs, u64)>>> = Rc::default();
        let log2 = Rc::clone(&log);
        let mut sim = Simulation::new();
        sim.set_trace(Box::new(move |t, seq, _ev: &Ev| log2.borrow_mut().push((t, seq))));
        sim.schedule(TimeNs::from_micros(1), Ev::Tick(4));
        sim.schedule(TimeNs::from_micros(1), Ev::Tick(4));
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        assert_eq!(*log.borrow(), vec![(TimeNs::from_micros(1), 0), (TimeNs::from_micros(1), 1)]);
        assert!(sim.take_trace().is_some());
    }

    #[test]
    fn recycled_simulation_pending_never_underflows() {
        let mut sim = Simulation::new();
        sim.schedule(TimeNs::from_micros(1), Ev::Tick(1));
        let mut rec = Recorder::default();
        let first = sim.run(&mut rec); // 4 events
        assert_eq!(first.events_pending(), 0);

        // Recycle the simulation for a second, smaller run.
        sim.reset();
        assert_eq!(sim.stats().events_pending(), 0);
        sim.schedule(TimeNs::from_micros(1), Ev::Tick(4));
        let second = sim.run(&mut rec); // 1 event
        assert_eq!(second.events_pending(), 0);

        // Aggregate accounting across the recycle — processed carried
        // forward against the restarted schedule counter — must saturate
        // to zero rather than underflow (this wrapped before the
        // `saturating_sub` hardening).
        let aggregate = RunStats {
            events_processed: first.events_processed + second.events_processed,
            ..second
        };
        assert!(aggregate.events_processed > aggregate.events_scheduled);
        assert_eq!(aggregate.events_pending(), 0);
    }

    #[test]
    fn identical_runs_dispatch_identical_sequences() {
        let run = || {
            let mut sim = Simulation::new();
            for i in 0..50u32 {
                sim.schedule(TimeNs::from_micros((i % 7) as u64), Ev::Tick(4 + i));
            }
            let mut rec = Recorder::default();
            sim.run(&mut rec);
            rec.seen
        };
        assert_eq!(run(), run());
    }
}
