//! # vtrain-model
//!
//! LLM architecture description and analytical accounting (parameters, FLOPs,
//! memory) for the vTrain simulation framework.
//!
//! This crate is the bottom of the vTrain workspace: it defines the
//! hyperparameters of a decoder-only transformer (Section II-A of the paper)
//! — hidden size `h`, number of layers `L`, maximum sequence length `s`,
//! number of attention heads `n`, and vocabulary size `V` — together with the
//! closed-form parameter count, the Megatron FLOPs-per-iteration formula used
//! for GPU-utilization accounting, and the per-GPU memory footprint model
//! used to reject infeasible parallelization plans.
//!
//! # Examples
//!
//! ```
//! use vtrain_model::{presets, ModelConfig};
//!
//! let gpt3 = presets::gpt3_175b();
//! assert_eq!(gpt3.num_layers(), 96);
//! // ~175 billion parameters
//! let billions = gpt3.num_parameters() as f64 / 1e9;
//! assert!((billions - 175.0).abs() < 5.0);
//!
//! let custom = ModelConfig::builder()
//!     .hidden_size(1024)
//!     .num_layers(12)
//!     .seq_len(2048)
//!     .num_heads(16)
//!     .vocab_size(50_257)
//!     .build()
//!     .expect("valid config");
//! assert!(custom.num_parameters() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod flops;
mod memory;
mod params;
pub mod presets;
pub mod units;

pub use config::{ModelConfig, ModelConfigBuilder, ModelConfigError};
pub use flops::FlopsBreakdown;
pub use memory::{ActivationStrategy, MemoryBreakdown};
pub use units::{Bytes, Flops, TimeNs};
