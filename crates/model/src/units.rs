//! Shared unit newtypes used across the vTrain workspace.
//!
//! Simulation timestamps and durations are integer nanoseconds ([`TimeNs`]),
//! data sizes are integer bytes ([`Bytes`]), and floating-point operation
//! counts are [`Flops`] (an `f64`, since LLM training easily exceeds 1e23
//! FLOPs which overflows `u64`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time or a duration, in nanoseconds.
///
/// Nanosecond integer resolution keeps the discrete-event replay of
/// Algorithm 1 exactly deterministic (no floating-point drift across
/// platforms) while comfortably covering both ~1 µs kernel launches and
/// multi-day training runs (u64 nanoseconds span ~584 years).
///
/// # Examples
///
/// ```
/// use vtrain_model::TimeNs;
///
/// let a = TimeNs::from_micros(3);
/// let b = TimeNs::from_nanos(500);
/// assert_eq!((a + b).as_nanos(), 3_500);
/// assert!(a > b);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TimeNs(u64);

impl TimeNs {
    /// The zero instant / empty duration.
    pub const ZERO: TimeNs = TimeNs(0);

    /// Creates a time value from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        TimeNs(ns)
    }

    /// Creates a time value from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeNs(us * 1_000)
    }

    /// Creates a time value from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeNs(ms * 1_000_000)
    }

    /// Creates a time value from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeNs(s * 1_000_000_000)
    }

    /// Creates a time value from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return TimeNs(0);
        }
        TimeNs((secs * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This value expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This value expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: TimeNs) -> Option<TimeNs> {
        self.0.checked_add(rhs.0).map(TimeNs)
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scale(self, factor: f64) -> TimeNs {
        assert!(factor.is_finite() && factor >= 0.0, "scale factor must be non-negative");
        TimeNs((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of `self` and `other`.
    pub fn max(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.max(other.0))
    }

    /// The smaller of `self` and `other`.
    pub fn min(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.min(other.0))
    }
}

impl Add for TimeNs {
    type Output = TimeNs;
    fn add(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeNs {
    fn add_assign(&mut self, rhs: TimeNs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeNs {
    type Output = TimeNs;
    fn sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 - rhs.0)
    }
}

impl SubAssign for TimeNs {
    fn sub_assign(&mut self, rhs: TimeNs) {
        self.0 -= rhs.0;
    }
}

impl Sum for TimeNs {
    fn sum<I: Iterator<Item = TimeNs>>(iter: I) -> TimeNs {
        iter.fold(TimeNs::ZERO, Add::add)
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A data size in bytes.
///
/// # Examples
///
/// ```
/// use vtrain_model::Bytes;
///
/// let b = Bytes::from_mib(64);
/// assert_eq!(b.as_u64(), 64 * 1024 * 1024);
/// assert_eq!((b + Bytes::from_bytes(1)).as_u64(), 64 * 1024 * 1024 + 1);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a raw byte count.
    pub const fn from_bytes(b: u64) -> Self {
        Bytes(b)
    }

    /// Creates a size from kibibytes.
    pub const fn from_kib(k: u64) -> Self {
        Bytes(k * 1024)
    }

    /// Creates a size from mebibytes.
    pub const fn from_mib(m: u64) -> Self {
        Bytes(m * 1024 * 1024)
    }

    /// Creates a size from gibibytes.
    pub const fn from_gib(g: u64) -> Self {
        Bytes(g * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Size as a float (useful for bandwidth arithmetic).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in fractional gibibytes.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2}GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2}MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.2}KiB", b / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A count of floating-point operations.
///
/// Stored as `f64` because end-to-end LLM training budgets reach 1e24+ FLOPs.
///
/// # Examples
///
/// ```
/// use vtrain_model::Flops;
///
/// let c = Flops::from_tflops(312.0); // one second of peak A100 FP16
/// assert!((c.as_f64() - 312e12).abs() < 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Flops(f64);

impl Flops {
    /// Zero FLOPs.
    pub const ZERO: Flops = Flops(0.0);

    /// Creates a count from a raw operation count.
    pub fn new(flops: f64) -> Self {
        assert!(flops.is_finite() && flops >= 0.0, "FLOP count must be finite and non-negative");
        Flops(flops)
    }

    /// Creates a count from teraFLOPs.
    pub fn from_tflops(t: f64) -> Self {
        Flops::new(t * 1e12)
    }

    /// Raw operation count.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Count in petaFLOPs.
    pub fn as_pflops(self) -> f64 {
        self.0 / 1e15
    }
}

impl Add for Flops {
    type Output = Flops;
    fn add(self, rhs: Flops) -> Flops {
        Flops(self.0 + rhs.0)
    }
}

impl AddAssign for Flops {
    fn add_assign(&mut self, rhs: Flops) {
        self.0 += rhs.0;
    }
}

impl Sub for Flops {
    type Output = Flops;
    fn sub(self, rhs: Flops) -> Flops {
        Flops((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Flops {
    type Output = Flops;
    fn mul(self, rhs: f64) -> Flops {
        Flops::new(self.0 * rhs)
    }
}

impl Div<Flops> for Flops {
    type Output = f64;
    fn div(self, rhs: Flops) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Flops {
    fn sum<I: Iterator<Item = Flops>>(iter: I) -> Flops {
        iter.fold(Flops::ZERO, Add::add)
    }
}

impl fmt::Display for Flops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v >= 1e15 {
            write!(f, "{:.3}PFLOPs", v / 1e15)
        } else if v >= 1e12 {
            write!(f, "{:.3}TFLOPs", v / 1e12)
        } else if v >= 1e9 {
            write!(f, "{:.3}GFLOPs", v / 1e9)
        } else {
            write!(f, "{v:.0}FLOPs")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(TimeNs::from_micros(1), TimeNs::from_nanos(1_000));
        assert_eq!(TimeNs::from_millis(1), TimeNs::from_micros(1_000));
        assert_eq!(TimeNs::from_secs(1), TimeNs::from_millis(1_000));
    }

    #[test]
    fn time_secs_roundtrip() {
        let t = TimeNs::from_secs_f64(1.234_567_891);
        assert!((t.as_secs_f64() - 1.234_567_891).abs() < 1e-9);
    }

    #[test]
    fn time_from_secs_f64_clamps_negative_and_nan() {
        assert_eq!(TimeNs::from_secs_f64(-1.0), TimeNs::ZERO);
        assert_eq!(TimeNs::from_secs_f64(f64::NAN), TimeNs::ZERO);
    }

    #[test]
    fn time_saturating_sub_never_underflows() {
        let a = TimeNs::from_nanos(5);
        let b = TimeNs::from_nanos(10);
        assert_eq!(a.saturating_sub(b), TimeNs::ZERO);
        assert_eq!(b.saturating_sub(a), TimeNs::from_nanos(5));
    }

    #[test]
    fn time_scale_rounds() {
        assert_eq!(TimeNs::from_nanos(10).scale(1.5), TimeNs::from_nanos(15));
        assert_eq!(TimeNs::from_nanos(3).scale(0.5), TimeNs::from_nanos(2)); // 1.5 rounds to 2
    }

    #[test]
    #[should_panic]
    fn time_scale_rejects_negative() {
        let _ = TimeNs::from_nanos(1).scale(-1.0);
    }

    #[test]
    fn time_display_picks_unit() {
        assert_eq!(TimeNs::from_nanos(12).to_string(), "12ns");
        assert_eq!(TimeNs::from_micros(12).to_string(), "12.000us");
        assert_eq!(TimeNs::from_millis(12).to_string(), "12.000ms");
        assert_eq!(TimeNs::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn bytes_constructors_and_display() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::from_gib(1).as_u64(), 1 << 30);
        assert_eq!(Bytes::from_bytes(512).to_string(), "512B");
        assert_eq!(Bytes::from_gib(2).to_string(), "2.00GiB");
    }

    #[test]
    fn bytes_arithmetic() {
        let b = Bytes::from_mib(1) + Bytes::from_kib(1);
        assert_eq!(b.as_u64(), 1024 * 1024 + 1024);
        assert_eq!((b - Bytes::from_kib(1)).as_u64(), 1024 * 1024);
        assert_eq!((Bytes::from_kib(2) * 3).as_u64(), 6 * 1024);
    }

    #[test]
    fn flops_arithmetic_and_ratio() {
        let a = Flops::from_tflops(100.0);
        let b = Flops::from_tflops(50.0);
        assert!(((a + b).as_f64() - 150e12).abs() < 1.0);
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn flops_rejects_negative() {
        let _ = Flops::new(-1.0);
    }

    #[test]
    fn sums_work() {
        let ts: TimeNs = (1..=4).map(TimeNs::from_nanos).sum();
        assert_eq!(ts, TimeNs::from_nanos(10));
        let bs: Bytes = (1..=4).map(Bytes::from_bytes).sum();
        assert_eq!(bs, Bytes::from_bytes(10));
    }
}
