//! Closed-form parameter counting for decoder-only transformers.
//!
//! The dominant term is the classic `12·L·h²` (per layer: `4h²` attention +
//! `8h²` FFN at the default expansion factor 4), plus word/positional
//! embeddings and biases. The LM head shares the word-embedding matrix
//! (paper §II-A), so it contributes no extra parameters.

use crate::ModelConfig;

impl ModelConfig {
    /// Parameters in one decoder layer.
    ///
    /// QKV projection (`3h² + 3h`), attention output projection (`h² + h`),
    /// the two FFN matrices (`2·e·h² + (e+1)·h` at expansion `e`), and two
    /// LayerNorms (`4h`).
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden_size() as u64;
        let e = self.ffn_expansion() as u64;
        let attention = 3 * h * h + 3 * h + h * h + h;
        let ffn = 2 * e * h * h + (e + 1) * h;
        let layernorms = 4 * h;
        attention + ffn + layernorms
    }

    /// Parameters in the embedding layer: word embeddings (`V·h`) plus
    /// positional embeddings (`s·h`).
    pub fn embedding_params(&self) -> u64 {
        let h = self.hidden_size() as u64;
        (self.vocab_size() as u64 + self.seq_len() as u64) * h
    }

    /// Total trainable parameters: `L` decoder layers + embeddings + the
    /// final LayerNorm (`2h`). The LM head is weight-tied to the word
    /// embedding and adds nothing.
    pub fn num_parameters(&self) -> u64 {
        self.num_layers() as u64 * self.params_per_layer()
            + self.embedding_params()
            + 2 * self.hidden_size() as u64
    }

    /// Total parameters expressed in billions (convenience for reporting).
    pub fn num_parameters_billion(&self) -> f64 {
        self.num_parameters() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    /// The presets must reproduce their advertised published sizes.
    #[test]
    fn preset_sizes_match_published_values() {
        let cases = [
            (presets::gpt2_1_5b(), 1.5, 0.1),
            (presets::gpt3_175b(), 175.0, 4.0),
            (presets::mt_nlg_530b(), 530.0, 5.0),
        ];
        for (model, expect_b, tol) in cases {
            let got = model.num_parameters_billion();
            assert!(
                (got - expect_b).abs() < tol,
                "{}: expected ~{expect_b}B params, counted {got:.2}B",
                model.name()
            );
        }
    }

    #[test]
    fn dominant_term_is_12_l_h_squared() {
        let m = presets::mt_nlg_530b();
        let dominant = 12.0 * m.num_layers() as f64 * (m.hidden_size() as f64).powi(2);
        let total = m.num_parameters() as f64;
        // Embeddings and biases are a small correction for a 530B model.
        assert!((total - dominant) / total < 0.01);
    }

    #[test]
    fn megatron_family_matches_advertised_names() {
        for m in presets::megatron_family() {
            // Names encode the advertised size, e.g. "Megatron 18.4B".
            let advertised: f64 =
                m.name().split_whitespace().last().unwrap().trim_end_matches('B').parse().unwrap();
            let got = m.num_parameters_billion();
            assert!(
                (got - advertised).abs() / advertised < 0.08,
                "{}: advertised {advertised}B counted {got:.2}B",
                m.name()
            );
        }
    }
}
