//! The transformer model description consumed by every other vTrain crate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Hyperparameters of a decoder-only, transformer-based LLM (paper Fig. 2).
///
/// The model consists of an embedding layer (word + positional embeddings),
/// `L` identical decoder layers (multi-head attention block + feedforward
/// block), and an LM head that reuses the transposed word-embedding matrix.
///
/// Construct via [`ModelConfig::builder`] or a preset in [`crate::presets`].
///
/// # Examples
///
/// ```
/// use vtrain_model::ModelConfig;
///
/// let cfg = ModelConfig::builder()
///     .hidden_size(2048)
///     .num_layers(24)
///     .seq_len(1024)
///     .num_heads(16)
///     .build()?;
/// assert_eq!(cfg.head_dim(), 128);
/// # Ok::<(), vtrain_model::ModelConfigError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    name: String,
    hidden_size: usize,
    num_layers: usize,
    seq_len: usize,
    num_heads: usize,
    vocab_size: usize,
    ffn_expansion: usize,
}

/// Error returned when a [`ModelConfigBuilder`] describes an invalid model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelConfigError {
    /// A dimension that must be positive was zero.
    ZeroDimension(&'static str),
    /// `hidden_size` is not divisible by `num_heads`.
    HeadsDoNotDivideHidden {
        /// The configured hidden size.
        hidden_size: usize,
        /// The configured head count.
        num_heads: usize,
    },
}

impl fmt::Display for ModelConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelConfigError::ZeroDimension(field) => {
                write!(f, "model dimension `{field}` must be positive")
            }
            ModelConfigError::HeadsDoNotDivideHidden { hidden_size, num_heads } => write!(
                f,
                "hidden size {hidden_size} is not divisible by {num_heads} attention heads"
            ),
        }
    }
}

impl std::error::Error for ModelConfigError {}

impl ModelConfig {
    /// Starts building a model description.
    pub fn builder() -> ModelConfigBuilder {
        ModelConfigBuilder::default()
    }

    /// Human-readable model name (e.g. `"GPT-3 175B"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Hidden dimension `h`.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Number of stacked decoder layers `L`.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Maximum sequence length `s` (tokens per training sample).
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Number of attention heads `n`.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// FFN expansion factor (4 for the classic `4h` intermediate size).
    pub fn ffn_expansion(&self) -> usize {
        self.ffn_expansion
    }

    /// FFN intermediate dimension (`ffn_expansion * hidden_size`).
    pub fn ffn_hidden_size(&self) -> usize {
        self.ffn_expansion * self.hidden_size
    }

    /// Per-head dimension (`hidden_size / num_heads`).
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Tokens consumed by one training iteration at the given global batch
    /// size (in sequences).
    pub fn tokens_per_iteration(&self, global_batch: usize) -> u64 {
        global_batch as u64 * self.seq_len as u64
    }

    /// Returns a copy with a different name (useful when deriving scaled
    /// variants of a preset).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (h={}, L={}, s={}, n={}, V={})",
            self.name,
            self.hidden_size,
            self.num_layers,
            self.seq_len,
            self.num_heads,
            self.vocab_size
        )
    }
}

/// Incremental builder for [`ModelConfig`].
///
/// Defaults: `seq_len = 2048`, `vocab_size = 51,200` (the Megatron-padded
/// GPT-2 vocabulary used by MT-NLG), `ffn_expansion = 4`, and
/// `name = "custom"`.
#[derive(Clone, Debug)]
pub struct ModelConfigBuilder {
    name: String,
    hidden_size: usize,
    num_layers: usize,
    seq_len: usize,
    num_heads: usize,
    vocab_size: usize,
    ffn_expansion: usize,
}

impl Default for ModelConfigBuilder {
    fn default() -> Self {
        ModelConfigBuilder {
            name: "custom".to_owned(),
            hidden_size: 0,
            num_layers: 0,
            seq_len: 2048,
            num_heads: 0,
            vocab_size: 51_200,
            ffn_expansion: 4,
        }
    }
}

impl ModelConfigBuilder {
    /// Sets the model name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the hidden dimension `h`.
    pub fn hidden_size(mut self, h: usize) -> Self {
        self.hidden_size = h;
        self
    }

    /// Sets the number of decoder layers `L`.
    pub fn num_layers(mut self, l: usize) -> Self {
        self.num_layers = l;
        self
    }

    /// Sets the maximum sequence length `s`.
    pub fn seq_len(mut self, s: usize) -> Self {
        self.seq_len = s;
        self
    }

    /// Sets the number of attention heads `n`.
    pub fn num_heads(mut self, n: usize) -> Self {
        self.num_heads = n;
        self
    }

    /// Sets the vocabulary size `V`.
    pub fn vocab_size(mut self, v: usize) -> Self {
        self.vocab_size = v;
        self
    }

    /// Sets the FFN expansion factor (default 4).
    pub fn ffn_expansion(mut self, e: usize) -> Self {
        self.ffn_expansion = e;
        self
    }

    /// Validates the description and produces a [`ModelConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelConfigError::ZeroDimension`] if any of `hidden_size`,
    /// `num_layers`, `seq_len`, `num_heads`, `vocab_size`, or
    /// `ffn_expansion` is zero, and
    /// [`ModelConfigError::HeadsDoNotDivideHidden`] if `num_heads` does not
    /// divide `hidden_size`.
    pub fn build(self) -> Result<ModelConfig, ModelConfigError> {
        for (value, field) in [
            (self.hidden_size, "hidden_size"),
            (self.num_layers, "num_layers"),
            (self.seq_len, "seq_len"),
            (self.num_heads, "num_heads"),
            (self.vocab_size, "vocab_size"),
            (self.ffn_expansion, "ffn_expansion"),
        ] {
            if value == 0 {
                return Err(ModelConfigError::ZeroDimension(field));
            }
        }
        if !self.hidden_size.is_multiple_of(self.num_heads) {
            return Err(ModelConfigError::HeadsDoNotDivideHidden {
                hidden_size: self.hidden_size,
                num_heads: self.num_heads,
            });
        }
        Ok(ModelConfig {
            name: self.name,
            hidden_size: self.hidden_size,
            num_layers: self.num_layers,
            seq_len: self.seq_len,
            num_heads: self.num_heads,
            vocab_size: self.vocab_size,
            ffn_expansion: self.ffn_expansion,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ModelConfig {
        ModelConfig::builder()
            .name("small")
            .hidden_size(1024)
            .num_layers(4)
            .seq_len(512)
            .num_heads(8)
            .vocab_size(50_257)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_fields() {
        let m = small();
        assert_eq!(m.name(), "small");
        assert_eq!(m.hidden_size(), 1024);
        assert_eq!(m.num_layers(), 4);
        assert_eq!(m.seq_len(), 512);
        assert_eq!(m.num_heads(), 8);
        assert_eq!(m.vocab_size(), 50_257);
        assert_eq!(m.head_dim(), 128);
        assert_eq!(m.ffn_hidden_size(), 4096);
    }

    #[test]
    fn zero_dimension_rejected() {
        let err = ModelConfig::builder().hidden_size(0).build().unwrap_err();
        assert_eq!(err, ModelConfigError::ZeroDimension("hidden_size"));
    }

    #[test]
    fn heads_must_divide_hidden() {
        let err = ModelConfig::builder()
            .hidden_size(1000)
            .num_layers(2)
            .num_heads(7)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelConfigError::HeadsDoNotDivideHidden { .. }));
        assert!(err.to_string().contains("not divisible"));
    }

    #[test]
    fn tokens_per_iteration_multiplies() {
        assert_eq!(small().tokens_per_iteration(1920), 1920 * 512);
    }

    #[test]
    fn with_name_renames() {
        assert_eq!(small().with_name("renamed").name(), "renamed");
    }

    #[test]
    fn display_mentions_dimensions() {
        let s = small().to_string();
        assert!(s.contains("h=1024") && s.contains("L=4"));
    }
}
