//! FLOPs accounting following the Megatron-LM formulation.
//!
//! The paper derives GPU compute utilization as "achieved FLOPS relative to
//! the maximum FLOPS" (Fig. 1), where achieved FLOPs per iteration follow the
//! Megatron closed form `96·B·s·L·h²·(1 + s/6h + V/16Lh)` — the factor 96
//! accounts for forward (24), activation-recompute forward (24), and backward
//! (48) matrix-multiply FLOPs per layer.

use serde::{Deserialize, Serialize};

use crate::units::Flops;
use crate::ModelConfig;

/// Per-iteration FLOPs decomposed by source, for one global batch.
///
/// All values are *model* FLOPs (the 2·m·n·k GEMM convention); elementwise
/// operations are ignored, matching how utilization is conventionally
/// reported for LLM training.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FlopsBreakdown {
    /// Forward-pass FLOPs across all decoder layers.
    pub decoder_forward: Flops,
    /// LM-head (vocabulary projection) forward FLOPs.
    pub lm_head_forward: Flops,
    /// Backward-pass FLOPs (2× forward).
    pub backward: Flops,
    /// Extra forward FLOPs re-executed due to activation recomputation
    /// (zero when recomputation is disabled).
    pub recompute: Flops,
}

impl FlopsBreakdown {
    /// Total FLOPs for the iteration.
    pub fn total(&self) -> Flops {
        self.decoder_forward + self.lm_head_forward + self.backward + self.recompute
    }
}

impl ModelConfig {
    /// Forward-pass matrix-multiply FLOPs for a single sequence through one
    /// decoder layer: `24·s·h² + 4·s²·h` (QKV/proj/FFN GEMMs + the two
    /// attention batched GEMMs).
    pub fn layer_forward_flops_per_seq(&self) -> Flops {
        let s = self.seq_len() as f64;
        let h = self.hidden_size() as f64;
        let e = self.ffn_expansion() as f64;
        // QKV: 6sh², proj: 2sh², FFN: 2·(2e)·s·h² ; attention: 2·(2s²h)
        let gemms = (6.0 + 2.0 + 4.0 * e) * s * h * h;
        let attention = 4.0 * s * s * h;
        Flops::new(gemms + attention)
    }

    /// LM-head forward FLOPs for a single sequence (`2·s·h·V`).
    pub fn lm_head_forward_flops_per_seq(&self) -> Flops {
        Flops::new(
            2.0 * self.seq_len() as f64 * self.hidden_size() as f64 * self.vocab_size() as f64,
        )
    }

    /// Full per-iteration FLOPs breakdown at the given global batch size
    /// (in sequences). `recompute` enables full activation recomputation
    /// (an extra forward pass), the standard setting for the large models
    /// the paper studies.
    pub fn flops_breakdown(&self, global_batch: usize, recompute: bool) -> FlopsBreakdown {
        let b = global_batch as f64;
        let l = self.num_layers() as f64;
        let decoder_fwd = self.layer_forward_flops_per_seq() * (b * l);
        let lm_head_fwd = self.lm_head_forward_flops_per_seq() * b;
        let fwd_total = decoder_fwd + lm_head_fwd;
        FlopsBreakdown {
            decoder_forward: decoder_fwd,
            lm_head_forward: lm_head_fwd,
            backward: fwd_total * 2.0,
            recompute: if recompute { decoder_fwd } else { Flops::ZERO },
        }
    }

    /// Total training FLOPs for one iteration (Megatron convention).
    ///
    /// With `recompute = true` and the default FFN expansion this equals the
    /// published `96·B·s·L·h²·(1 + s/6h + V/16Lh)` up to the small LM-head
    /// recompute term.
    pub fn flops_per_iteration(&self, global_batch: usize, recompute: bool) -> Flops {
        self.flops_breakdown(global_batch, recompute).total()
    }

    /// The approximate end-to-end training compute `C ≈ 6·N·T` FLOPs used by
    /// the Chinchilla scaling-law arithmetic (paper §V-C), where `N` is the
    /// parameter count and `tokens` is the number of training tokens.
    pub fn approx_training_flops(&self, tokens: u64) -> Flops {
        Flops::new(6.0 * self.num_parameters() as f64 * tokens as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    /// Our per-GEMM accounting must agree with the published Megatron
    /// closed form within a fraction of a percent.
    #[test]
    fn matches_megatron_closed_form() {
        for model in [presets::gpt3_175b(), presets::mt_nlg_530b()] {
            let b = 1536usize;
            let (s, h, l, v) = (
                model.seq_len() as f64,
                model.hidden_size() as f64,
                model.num_layers() as f64,
                model.vocab_size() as f64,
            );
            let published =
                96.0 * b as f64 * s * l * h * h * (1.0 + s / (6.0 * h) + v / (16.0 * l * h));
            let ours = model.flops_per_iteration(b, true).as_f64();
            let rel = (ours - published).abs() / published;
            assert!(rel < 0.01, "{}: rel error {rel}", model.name());
        }
    }

    #[test]
    fn backward_is_twice_forward() {
        let m = presets::gpt3_175b();
        let bd = m.flops_breakdown(8, false);
        let fwd = bd.decoder_forward + bd.lm_head_forward;
        assert!((bd.backward.as_f64() / fwd.as_f64() - 2.0).abs() < 1e-12);
        assert_eq!(bd.recompute, Flops::ZERO);
    }

    #[test]
    fn recompute_adds_decoder_forward() {
        let m = presets::gpt3_175b();
        let with = m.flops_breakdown(8, true);
        let without = m.flops_breakdown(8, false);
        assert_eq!(with.recompute, without.decoder_forward);
        assert!(with.total() > without.total());
    }

    #[test]
    fn flops_scale_linearly_in_batch() {
        let m = presets::gpt2_1_5b();
        let one = m.flops_per_iteration(1, true).as_f64();
        let eight = m.flops_per_iteration(8, true).as_f64();
        assert!((eight / one - 8.0).abs() < 1e-9);
    }

    #[test]
    fn chinchilla_budget_matches_paper_example() {
        // Paper §V-C: 3,360 A100s × 30 days at 100% utility = 2.72e24 FLOPs.
        let c: f64 = 3360.0 * 312e12 * 30.0 * 86_400.0;
        assert!((c / 1e24 - 2.72).abs() < 0.02);
    }
}
