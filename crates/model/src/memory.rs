//! Per-GPU memory footprint estimation under 3D parallelism.
//!
//! State-of-the-art LLMs are memory-capacity bound (paper §II-B): a
//! parallelization plan is only feasible if weights, optimizer state,
//! gradients, and in-flight activations fit in a single GPU's HBM. vTrain
//! uses this model to prune the design space before simulating.

use serde::{Deserialize, Serialize};

use crate::units::Bytes;
use crate::ModelConfig;

/// How activations are retained between forward and backward passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationStrategy {
    /// Full activation recomputation: only layer-boundary activations are
    /// stored per in-flight micro-batch; the working set of a single layer
    /// is re-materialized during backward. Standard for the paper's models.
    #[default]
    FullRecompute,
    /// No recomputation: every layer's full activation working set is kept.
    StoreAll,
}

/// Memory required on the *most loaded* GPU of a training plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// FP16 weights resident on this GPU.
    pub weights: Bytes,
    /// FP16 gradients.
    pub gradients: Bytes,
    /// Mixed-precision Adam state (FP32 master weights + two moments = 12 B/param).
    pub optimizer: Bytes,
    /// Activation storage for all in-flight micro-batches.
    pub activations: Bytes,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> Bytes {
        self.weights + self.gradients + self.optimizer + self.activations
    }
}

impl ModelConfig {
    /// Parameters resident on one GPU of the *heaviest* pipeline stage under
    /// `t`-way tensor and `p`-way pipeline parallelism.
    ///
    /// Decoder layers are distributed round-robin (`ceil(L/p)` on the
    /// heaviest stage) and split `t` ways; the word embedding (first stage)
    /// and the tied LM head + final LayerNorm (last stage) are also split
    /// `t` ways following Megatron's vocab-parallel embedding.
    pub fn params_per_gpu(&self, tensor: usize, pipeline: usize) -> u64 {
        assert!(tensor > 0 && pipeline > 0, "parallel degrees must be positive");
        let layers_heaviest = self.num_layers().div_ceil(pipeline) as u64;
        let layer_share = layers_heaviest * self.params_per_layer() / tensor as u64;
        // First stage holds the embedding; for p == 1 the same GPU holds both
        // embedding and final LayerNorm. Take the heavier endpoint.
        let first_extra = self.embedding_params() / tensor as u64;
        let last_extra = 2 * self.hidden_size() as u64;
        layer_share
            + if pipeline == 1 { first_extra + last_extra } else { first_extra.max(last_extra) }
    }

    /// Activation bytes for ONE micro-batch on one GPU of a stage, following
    /// the Megatron activation-memory formula for a tensor-parallel decoder
    /// layer: `s·b·h·(10 + 24/t + 5·n·s/(h·t))` bytes, FP16.
    pub fn activation_bytes_per_layer(&self, micro_batch: usize, tensor: usize) -> Bytes {
        let s = self.seq_len() as f64;
        let b = micro_batch as f64;
        let h = self.hidden_size() as f64;
        let n = self.num_heads() as f64;
        let t = tensor as f64;
        let per_layer = s * b * h * (10.0 + 24.0 / t + 5.0 * n * s / (h * t));
        Bytes::from_bytes(per_layer.ceil() as u64)
    }

    /// Layer-boundary activation bytes for one micro-batch (the only thing
    /// stored per layer under full recomputation): `2·s·b·h` (FP16).
    pub fn boundary_activation_bytes(&self, micro_batch: usize) -> Bytes {
        Bytes::from_bytes(
            2 * self.seq_len() as u64 * micro_batch as u64 * self.hidden_size() as u64,
        )
    }

    /// Estimates the memory footprint of the most loaded GPU.
    ///
    /// `in_flight_micro_batches` is schedule dependent: the number of
    /// micro-batches whose activations coexist (all of them under GPipe, at
    /// most the pipeline depth under 1F1B).
    pub fn memory_per_gpu(
        &self,
        tensor: usize,
        pipeline: usize,
        micro_batch: usize,
        in_flight_micro_batches: usize,
        strategy: ActivationStrategy,
    ) -> MemoryBreakdown {
        let params = self.params_per_gpu(tensor, pipeline);
        let layers_heaviest = self.num_layers().div_ceil(pipeline) as u64;
        let in_flight = in_flight_micro_batches.max(1) as u64;
        // Bytes retained per in-flight micro-batch, plus a transient working
        // set that exists only once (a single layer recomputes at a time).
        let (stored_per_mb, transient) = match strategy {
            ActivationStrategy::FullRecompute => (
                // Stored: one boundary activation per layer.
                self.boundary_activation_bytes(micro_batch).as_u64() * layers_heaviest,
                // Working set of the one layer being recomputed.
                self.activation_bytes_per_layer(micro_batch, tensor).as_u64(),
            ),
            ActivationStrategy::StoreAll => {
                (self.activation_bytes_per_layer(micro_batch, tensor).as_u64() * layers_heaviest, 0)
            }
        };
        MemoryBreakdown {
            weights: Bytes::from_bytes(2 * params),
            gradients: Bytes::from_bytes(2 * params),
            optimizer: Bytes::from_bytes(12 * params),
            activations: Bytes::from_bytes(stored_per_mb * in_flight + transient),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn params_per_gpu_shrink_with_parallelism() {
        let m = presets::gpt3_175b();
        let base = m.params_per_gpu(1, 1);
        assert!(m.params_per_gpu(8, 1) < base);
        assert!(m.params_per_gpu(1, 8) < base);
        assert!(m.params_per_gpu(8, 8) < m.params_per_gpu(8, 1));
    }

    #[test]
    fn params_per_gpu_unpartitioned_matches_total() {
        let m = presets::gpt2_1_5b();
        let got = m.params_per_gpu(1, 1);
        let total = m.num_parameters();
        // Identical up to integer division in the tensor split (t = 1 here).
        assert_eq!(got, total);
    }

    #[test]
    fn mt_nlg_fits_only_when_partitioned() {
        let m = presets::mt_nlg_530b();
        let a100_80g = Bytes::from_gib(80);
        let unsplit = m.memory_per_gpu(1, 1, 1, 1, ActivationStrategy::FullRecompute);
        assert!(unsplit.total() > a100_80g, "530B cannot fit a single GPU");
        // The published (8, d, 35) plan must fit the DGX A100-80GB nodes
        // MT-NLG was actually trained on.
        let split = m.memory_per_gpu(8, 35, 1, 35, ActivationStrategy::FullRecompute);
        assert!(
            split.total() <= a100_80g,
            "published MT-NLG plan must fit 80 GiB, got {}",
            split.total()
        );
    }

    #[test]
    fn recompute_uses_less_activation_memory() {
        let m = presets::gpt3_175b();
        let rec = m.memory_per_gpu(8, 8, 4, 8, ActivationStrategy::FullRecompute);
        let all = m.memory_per_gpu(8, 8, 4, 8, ActivationStrategy::StoreAll);
        assert!(rec.activations < all.activations);
        assert_eq!(rec.weights, all.weights);
    }

    #[test]
    fn activations_scale_affinely_with_in_flight_micro_batches() {
        // activations(n) = stored·n + one transient recompute working set.
        let m = presets::gpt2_1_5b();
        let at = |n: usize| {
            m.memory_per_gpu(1, 4, 2, n, ActivationStrategy::FullRecompute).activations.as_u64()
        };
        let (one, two, four) = (at(1), at(2), at(4));
        assert!(two > one && four > two);
        assert_eq!(four - two, 2 * (two - one), "stored part scales linearly");
        assert!(one > two - one, "transient working set counted exactly once");
    }

    #[test]
    fn optimizer_state_is_six_times_weights() {
        let m = presets::gpt2_1_5b();
        let bd = m.memory_per_gpu(2, 2, 1, 1, ActivationStrategy::FullRecompute);
        assert_eq!(bd.optimizer.as_u64(), 6 * bd.weights.as_u64());
        assert_eq!(bd.gradients, bd.weights);
    }
}
