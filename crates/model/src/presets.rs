//! Published model configurations used throughout the paper's evaluation.

use crate::ModelConfig;

fn preset(name: &str, h: usize, l: usize, n: usize, s: usize, v: usize) -> ModelConfig {
    ModelConfig::builder()
        .name(name)
        .hidden_size(h)
        .num_layers(l)
        .num_heads(n)
        .seq_len(s)
        .vocab_size(v)
        .build()
        .expect("preset configurations are valid by construction")
}

/// GPT-2 XL (1.5B parameters), the 2019 starting point of the scaling trend
/// cited in §II-A.
pub fn gpt2_1_5b() -> ModelConfig {
    preset("GPT-2 1.5B", 1600, 48, 25, 1024, 50_257)
}

/// GPT-3 (175B parameters), the Fig. 1 motivating workload.
pub fn gpt3_175b() -> ModelConfig {
    preset("GPT-3 175B", 12_288, 96, 96, 2048, 50_257)
}

/// Megatron-Turing NLG 530B — the case-study #1 model: `h = 20,480`,
/// `L = 105`, `n = 128` (§V-A).
pub fn mt_nlg_530b() -> ModelConfig {
    preset("MT-NLG 530B", 20_480, 105, 128, 2048, 51_200)
}

/// The scaled-down Megatron model family of Narayanan et al. \[40\], used for
/// the paper's multi-node validation and Table II. Names advertise the
/// parameter count in billions.
pub fn megatron_family() -> Vec<ModelConfig> {
    [
        ("Megatron 1.7B", 2304, 24, 24),
        ("Megatron 3.6B", 3072, 30, 32),
        ("Megatron 7.5B", 4096, 36, 32),
        ("Megatron 18.4B", 6144, 40, 48),
        ("Megatron 39.1B", 8192, 48, 64),
        ("Megatron 76.1B", 10_240, 60, 80),
        ("Megatron 145.6B", 12_288, 80, 96),
        ("Megatron 310.1B", 16_384, 96, 128),
        ("Megatron 529.6B", 20_480, 105, 128),
    ]
    .into_iter()
    .map(|(name, h, l, n)| preset(name, h, l, n, 2048, 51_200))
    .collect()
}

/// Looks up a member of [`megatron_family`] by advertised size, e.g.
/// `megatron("18.4B")`.
///
/// # Panics
///
/// Panics if `size` does not name a family member.
pub fn megatron(size: &str) -> ModelConfig {
    // Exact-name match: a suffix match would resolve "8.4B" to 18.4B.
    let target = format!("Megatron {size}");
    megatron_family()
        .into_iter()
        .find(|m| m.name() == target)
        .unwrap_or_else(|| panic!("no Megatron family member named {size}"))
}

/// The three LLM configurations of Table III used by the multi-tenant GPU
/// cluster experiments (§V-B), together with their global batch sizes.
///
/// Returns `(model, global_batch)` tuples for 18.4B/1024, 39.1B/1536, and
/// 81.2B/1792.
pub fn table_iii_models() -> Vec<(ModelConfig, usize)> {
    vec![
        (preset("Table-III 18.4B", 6144, 40, 48, 2048, 51_200), 1024),
        (preset("Table-III 39.1B", 8192, 48, 64, 2048, 51_200), 1536),
        (preset("Table-III 81.2B", 10_240, 64, 80, 2048, 51_200), 1792),
    ]
}

/// A compact family of small models (fits one 8-GPU node) used to generate
/// the paper's 1,440-point single-node validation sweep (Fig. 9(a)).
pub fn single_node_family() -> Vec<ModelConfig> {
    let mut out = Vec::new();
    for (h, n) in [(1024, 16), (1536, 16), (2048, 16), (2560, 32), (3072, 32)] {
        for l in [4usize, 8, 12] {
            for s in [512usize, 1024, 2048] {
                out.push(preset(&format!("val-h{h}-L{l}-s{s}"), h, l, n, s, 51_200));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn megatron_lookup_finds_members() {
        assert_eq!(megatron("18.4B").hidden_size(), 6144);
        assert_eq!(megatron("39.1B").num_layers(), 48);
    }

    #[test]
    #[should_panic(expected = "no Megatron family member")]
    fn megatron_lookup_panics_on_unknown() {
        let _ = megatron("999B");
    }

    #[test]
    fn table_iii_sizes_match_paper() {
        let models = table_iii_models();
        let sizes: Vec<f64> = models.iter().map(|(m, _)| m.num_parameters_billion()).collect();
        assert!((sizes[0] - 18.4).abs() < 1.0, "got {}", sizes[0]);
        assert!((sizes[1] - 39.1).abs() < 1.5, "got {}", sizes[1]);
        assert!((sizes[2] - 81.2).abs() < 2.5, "got {}", sizes[2]);
        let batches: Vec<usize> = models.iter().map(|&(_, b)| b).collect();
        assert_eq!(batches, vec![1024, 1536, 1792]);
    }

    #[test]
    fn single_node_family_is_varied_and_valid() {
        let fam = single_node_family();
        assert_eq!(fam.len(), 45);
        for m in &fam {
            assert!(m.hidden_size().is_multiple_of(m.num_heads()));
        }
    }
}
