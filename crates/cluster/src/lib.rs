//! # vtrain-cluster
//!
//! Multi-tenant GPU cluster scheduling simulator (paper §V-B).
//!
//! Reproduces the paper's second case study: an ElasticFlow-style serverless
//! training platform with deadline-aware admission control and elastic GPU
//! scaling, evaluated against workload traces of LLM training jobs
//! (Table III models on a 1,024-GPU A100 cluster).
//!
//! The **only** difference between the two compared systems is the per-job
//! throughput profile the scheduler consults:
//! * **ElasticFlow baseline** — profiles scale along the data-parallel
//!   dimension only, at the minimal tensor/pipeline degrees the model needs
//!   to fit memory (exactly the limitation the paper identifies);
//! * **vTrain-informed** — profiles come from vTrain's full `(t, d, p, m)`
//!   design-space exploration, pointwise at least as fast.
//!
//! Everything else — traces, admission control, elastic allocation, event
//! loop — is shared, so measured improvements in deadline satisfaction,
//! JCT, and makespan (Figs. 12/13/14) isolate the value of better plans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod job;
mod racks;
mod scheduler;
mod trace;

pub use catalog::{build_catalog, CatalogEntry, ModelCatalog, ProfilePolicy, ThroughputProfile};
pub use job::{JobOutcome, JobSpec};
pub use racks::assign_racks;
pub use scheduler::{simulate_cluster, SchedulerConfig, SimOutcome};
pub use trace::{generate_trace, TraceConfig};
