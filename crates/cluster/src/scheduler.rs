//! The ElasticFlow-style deadline-aware elastic scheduler and its
//! discrete-event cluster simulation (§V-B).
//!
//! The simulation runs on the shared [`vtrain_engine`] kernel: job
//! arrivals, predicted completions, and deadline expirations are typed
//! engine events, and the GPU fleet is a counting
//! [`CapacityPool`](vtrain_engine::resource::CapacityPool) resource.
//! Because elastic reallocation changes every running job's completion
//! time at every event, completion predictions carry the epoch of the
//! reallocation that computed them and are lazily invalidated: a stale
//! prediction popping off the queue is skipped without touching state, so
//! the sequence of *effective* events is identical to a loop that
//! recomputes the next event time from scratch each round (the pre-engine
//! implementation).

use serde::{Deserialize, Serialize};
use vtrain_engine::resource::CapacityPool;
use vtrain_engine::{Handler, Simulation};
use vtrain_model::TimeNs;
use vtrain_net::flow::max_min_rates;
use vtrain_net::NetworkBackend;

use crate::catalog::{ModelCatalog, ProfilePolicy, ThroughputProfile};
use crate::job::{JobOutcome, JobSpec};
use crate::racks::assign_racks;

/// Scheduler configuration: which profile source informs decisions and
/// how the fleet is carved into racks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// GPUs in the shared cluster (the paper uses 1,024).
    pub total_gpus: usize,
    /// Throughput profiles consulted: baseline ElasticFlow or vTrain.
    pub policy: ProfilePolicy,
    /// GPUs per rack. Grants are packed rack-locally when possible; the
    /// default ([`SchedulerConfig::new`]) is one rack spanning the whole
    /// fleet, which reproduces the rack-oblivious behaviour exactly.
    pub gpus_per_rack: usize,
    /// Percent slowdown applied to a job's iteration time while its
    /// allocation spans more than one rack (its gradient traffic crosses
    /// the rack spine). 0 disables the penalty.
    ///
    /// Under [`NetworkBackend::ClosedForm`] this scalar is the whole
    /// cross-rack model: every spanning job pays the same fixed factor no
    /// matter how many other jobs cross the spine with it. That regime is
    /// kept as the documented fallback; prefer
    /// [`with_network`](SchedulerConfig::with_network) with
    /// [`NetworkBackend::FairSharing`], where the scalar becomes the cost
    /// of a *sole* occupant's spine crossing and co-resident spanning
    /// jobs additionally contend for the shared spine bandwidth.
    pub cross_rack_slowdown_pct: u32,
    /// How co-scheduled jobs' cross-rack traffic shares the rack spine.
    ///
    /// [`NetworkBackend::ClosedForm`] (the default) applies the scalar
    /// [`cross_rack_slowdown_pct`](SchedulerConfig::cross_rack_slowdown_pct)
    /// to every spanning job independently. With
    /// [`NetworkBackend::FairSharing`], spanning jobs are flows on the
    /// shared spine link under max-min fair sharing: each one's crossing
    /// drains at its fair share, so the slowdown grows with the number of
    /// co-resident spanning jobs. A sole spanning job reproduces the
    /// scalar penalty exactly.
    #[serde(default)]
    pub network: NetworkBackend,
}

impl SchedulerConfig {
    /// Rack-oblivious configuration: one rack, no cross-rack penalty.
    pub fn new(total_gpus: usize, policy: ProfilePolicy) -> Self {
        SchedulerConfig {
            total_gpus,
            policy,
            gpus_per_rack: total_gpus,
            cross_rack_slowdown_pct: 0,
            network: NetworkBackend::default(),
        }
    }

    /// Carves the fleet into racks of `gpus_per_rack` GPUs with a
    /// `slowdown_pct` percent iteration-time penalty for grants that
    /// span racks.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_rack == 0`.
    pub fn with_racks(mut self, gpus_per_rack: usize, slowdown_pct: u32) -> Self {
        assert!(gpus_per_rack > 0, "racks must hold at least one GPU");
        self.gpus_per_rack = gpus_per_rack;
        self.cross_rack_slowdown_pct = slowdown_pct;
        self
    }

    /// Selects how spanning jobs share the rack spine (see
    /// [`SchedulerConfig::network`]).
    pub fn with_network(mut self, network: NetworkBackend) -> Self {
        self.network = network;
        self
    }

    /// Number of racks (`ceil(total_gpus / gpus_per_rack)`).
    pub fn num_racks(&self) -> usize {
        self.total_gpus.div_ceil(self.gpus_per_rack)
    }
}

/// Result of simulating a whole trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Per-job verdicts, indexed consistently with the input order.
    pub outcomes: Vec<JobOutcome>,
    /// Time at which the last job left the system.
    pub makespan: TimeNs,
    /// Effective engine events dispatched (arrivals, completions, deadline
    /// expirations; excludes lazily invalidated predictions).
    pub events_processed: u64,
    /// Reallocation rounds in which at least one job's grant spanned
    /// racks (0 on a single-rack fleet).
    pub cross_rack_rounds: u64,
}

impl SimOutcome {
    /// Fraction of jobs that met their deadlines (Fig. 12's metric).
    /// Jobs without deadlines count as satisfied.
    pub fn deadline_satisfactory_ratio(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        let ok = self.outcomes.iter().filter(|o| !o.violated).count();
        ok as f64 / self.outcomes.len() as f64
    }

    /// Mean job completion time over finished jobs (Fig. 13's metric).
    pub fn average_jct(&self, jobs: &[JobSpec]) -> Option<TimeNs> {
        let jcts: Vec<f64> = self
            .outcomes
            .iter()
            .zip(jobs)
            .filter_map(|(o, j)| o.jct(j).map(|t| t.as_secs_f64()))
            .collect();
        if jcts.is_empty() {
            return None;
        }
        Some(TimeNs::from_secs_f64(jcts.iter().sum::<f64>() / jcts.len() as f64))
    }
}

/// Live state of one admitted job.
struct Active {
    idx: usize,
    remaining: f64,
    alloc: usize, // 0 = paused
    /// Iteration-time factor from the current rack placement (1.0 =
    /// rack-local).
    penalty: f64,
}

/// Progress-tracking tolerance (iterations / seconds).
const EPS: f64 = 1e-6;

/// The cluster simulation's typed engine events.
enum ClusterEvent {
    /// The `k`-th job in arrival order reaches the cluster.
    Arrival(usize),
    /// A running job is predicted to finish, as computed by the
    /// reallocation of the carried epoch; stale epochs are skipped.
    Completion(u64),
    /// An admitted job's absolute deadline passes; skipped if the job
    /// already left the system.
    DeadlineExpiry(usize),
}

/// Engine handler owning all scheduler state.
struct ClusterSim<'a> {
    jobs: &'a [JobSpec],
    profiles: Vec<&'a ThroughputProfile>,
    /// Job indices sorted by `(arrival, id)`.
    order: Vec<usize>,
    next_arrival: usize,
    active: Vec<Active>,
    outcomes: Vec<JobOutcome>,
    pool: CapacityPool,
    cfg: SchedulerConfig,
    cross_rack_rounds: u64,
    /// Largest spanning-job slowdown factor any reallocation produced
    /// (1.0 when nothing ever spanned).
    max_penalty: f64,
    /// Simulation time (seconds) progress was last advanced to.
    last_now: f64,
    makespan: f64,
    /// Bumped by every reallocation; invalidates older completion
    /// predictions.
    epoch: u64,
    /// Effective (non-stale) events dispatched.
    effective_events: u64,
}

impl Handler<ClusterEvent> for ClusterSim<'_> {
    fn handle(&mut self, event: ClusterEvent, sim: &mut Simulation<ClusterEvent>) {
        // Lazy invalidation: skip events that no longer describe the
        // system without advancing any state.
        match event {
            ClusterEvent::Arrival(k) if k < self.next_arrival => return,
            ClusterEvent::Completion(epoch) if epoch != self.epoch => return,
            ClusterEvent::DeadlineExpiry(idx) if !self.active.iter().any(|a| a.idx == idx) => {
                return;
            }
            _ => {}
        }
        self.effective_events += 1;
        let now = sim.now().as_secs_f64();

        // ---- advance running jobs' progress to `now`.
        let dt = now - self.last_now;
        for a in &mut self.active {
            if a.alloc > 0 {
                let it = self.profiles[a.idx].iter_time(a.alloc).expect("allocated rung exists");
                a.remaining -= dt / (it.as_secs_f64() * a.penalty);
            }
        }
        self.last_now = now;

        // ---- completions.
        let (outcomes, makespan) = (&mut self.outcomes, &mut self.makespan);
        self.active.retain(|a| {
            if a.remaining <= EPS {
                outcomes[a.idx].completion = Some(TimeNs::from_secs_f64(now));
                *makespan = makespan.max(now);
                false
            } else {
                true
            }
        });

        // ---- deadline expirations (terminate, count as violated).
        let jobs = self.jobs;
        self.active.retain(|a| {
            let expired = jobs[a.idx].deadline.is_some_and(|d| d.as_secs_f64() <= now + EPS);
            if expired {
                outcomes[a.idx].violated = true;
                *makespan = makespan.max(now);
            }
            !expired
        });

        // ---- arrivals.
        while self.next_arrival < self.order.len()
            && self.jobs[self.order[self.next_arrival]].arrival.as_secs_f64() <= now + EPS
        {
            let idx = self.order[self.next_arrival];
            self.next_arrival += 1;
            let job = &self.jobs[idx];
            let profile = self.profiles[idx];
            if profile.min_gpus() > self.pool.total() {
                self.outcomes[idx].violated = true;
                self.makespan = self.makespan.max(now);
                continue;
            }
            if let Some(d) = job.deadline {
                // Admission control: reject if even the largest profiled
                // allocation cannot make the deadline in isolation.
                let left = TimeNs::from_secs_f64((d.as_secs_f64() - now).max(0.0));
                if profile.min_gpus_to_finish(job.iterations as f64, left).is_none() {
                    self.outcomes[idx].violated = true;
                    self.makespan = self.makespan.max(now);
                    continue;
                }
                // Admitted with a deadline: its expiry is a real event.
                sim.schedule(d.max(sim.now()), ClusterEvent::DeadlineExpiry(idx));
            }
            self.active.push(Active {
                idx,
                remaining: job.iterations as f64,
                alloc: 0,
                penalty: 1.0,
            });
        }

        if self.active.is_empty() && self.next_arrival >= self.order.len() {
            // Only stale predictions can remain; don't bother skipping
            // through them one by one.
            sim.stop();
            return;
        }

        // ---- elastic reallocation, then rack placement, then predict the
        // next completion.
        reallocate(&mut self.active, self.jobs, &self.profiles, &mut self.pool, now);
        self.place_on_racks();
        self.epoch += 1;
        let mut next_completion = f64::INFINITY;
        for a in &self.active {
            if a.alloc > 0 {
                let it = self.profiles[a.idx].iter_time(a.alloc).expect("allocated rung exists");
                next_completion =
                    next_completion.min(now + a.remaining * it.as_secs_f64() * a.penalty);
            }
        }
        if next_completion.is_finite() {
            // Quantizing to nanoseconds can round the prediction back onto
            // the current instant; dispatching it there would advance no
            // progress (dt = 0) and re-predict the same time forever. One
            // nanosecond forward guarantees dt > 0, which overshoots any
            // sub-nanosecond residue and retires the job.
            let mut at = TimeNs::from_secs_f64(next_completion);
            if at <= sim.now() {
                at = sim.now() + TimeNs::from_nanos(1);
            }
            sim.schedule(at, ClusterEvent::Completion(self.epoch));
        }
        // If nothing is running, the next arrival or deadline event (both
        // already queued) drives the simulation; if neither exists the
        // queue drains and the leftovers are marked unschedulable below.
    }
}

impl ClusterSim<'_> {
    /// Packs the fresh grants into racks and refreshes each job's
    /// cross-rack penalty. On a single-rack fleet every span is 1 and
    /// every penalty 1.0, reproducing rack-oblivious behaviour exactly.
    ///
    /// Under [`NetworkBackend::ClosedForm`] every spanning job pays the
    /// fixed scalar factor. Under [`NetworkBackend::FairSharing`] each
    /// spanning job contributes one flow on the shared spine link and
    /// [`max_min_rates`] splits the spine between them: a job whose
    /// crossing drains at a `1/k` fair share pays `k` times the scalar's
    /// excess, so a sole occupant reproduces the scalar exactly and
    /// co-resident spanning jobs slow each other down.
    fn place_on_racks(&mut self) {
        let grants: Vec<usize> = self.active.iter().map(|a| a.alloc).collect();
        let spans = assign_racks(&grants, self.cfg.gpus_per_rack, self.cfg.total_gpus);
        let excess = f64::from(self.cfg.cross_rack_slowdown_pct) / 100.0;
        let spanning: Vec<usize> =
            spans.iter().enumerate().filter(|(_, s)| **s > 1).map(|(i, _)| i).collect();

        for a in self.active.iter_mut() {
            a.penalty = 1.0;
        }
        match self.cfg.network {
            NetworkBackend::ClosedForm => {
                for &i in &spanning {
                    self.active[i].penalty = 1.0 + excess;
                }
            }
            NetworkBackend::FairSharing => {
                // One unit-demand flow per spanning job over the one
                // spine link of unit capacity.
                let flows: Vec<[usize; 1]> = spanning.iter().map(|_| [0usize]).collect();
                let mut rates = Vec::new();
                max_min_rates(&[1.0], &flows, &mut rates);
                for (&i, rate) in spanning.iter().zip(&rates) {
                    self.active[i].penalty = 1.0 + excess / rate;
                }
            }
        }
        for a in &self.active {
            self.max_penalty = self.max_penalty.max(a.penalty);
        }
        if !spanning.is_empty() {
            self.cross_rack_rounds += 1;
        }
    }
}

/// Simulates the cluster over a trace.
///
/// Both compared systems run *this exact function*; only
/// `cfg.policy` differs (§V-B: "we implement the exact same scheduling
/// algorithm ElasticFlow proposes").
///
/// Algorithm per effective event: advance running jobs' progress, retire
/// completions and deadline expirations (ElasticFlow terminates
/// deadline-missing jobs), admit arrivals (optimistic admission — rejected
/// outright only if even the largest profiled allocation cannot meet the
/// deadline), then reallocate: earliest-deadline-first gets each deadline
/// job its minimum sufficient allocation, remaining jobs get their minimal
/// rung, and leftover GPUs go to the upgrade with the best marginal
/// speed-up per GPU.
///
/// # Panics
///
/// Panics if a job references a model absent from the catalog.
pub fn simulate_cluster(
    jobs: &[JobSpec],
    catalog: &ModelCatalog,
    cfg: &SchedulerConfig,
) -> SimOutcome {
    let profiles: Vec<&ThroughputProfile> =
        jobs.iter().map(|j| catalog.profile(&j.model_name, cfg.policy)).collect();

    // Arrival order (stable by arrival, then id).
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (jobs[i].arrival, jobs[i].id));

    let mut sim = Simulation::with_capacity(jobs.len() * 2);
    for (k, &idx) in order.iter().enumerate() {
        sim.schedule(jobs[idx].arrival, ClusterEvent::Arrival(k));
    }

    let mut state = ClusterSim {
        jobs,
        profiles,
        order,
        next_arrival: 0,
        active: Vec::new(),
        outcomes: jobs
            .iter()
            .map(|j| JobOutcome { id: j.id, completion: None, violated: false })
            .collect(),
        pool: CapacityPool::new(cfg.total_gpus),
        cfg: *cfg,
        cross_rack_rounds: 0,
        max_penalty: 1.0,
        last_now: 0.0,
        makespan: 0.0,
        epoch: 0,
        effective_events: 0,
    };
    sim.run(&mut state);

    // Unschedulable stragglers: admitted jobs that can never run (their
    // minimal rung exceeds free capacity forever) leave the queue with no
    // completion or deadline event to retire them.
    for a in &state.active {
        state.outcomes[a.idx].violated = true;
    }

    let outcome = SimOutcome {
        outcomes: state.outcomes,
        makespan: TimeNs::from_secs_f64(state.makespan),
        events_processed: state.effective_events,
        cross_rack_rounds: state.cross_rack_rounds,
    };
    if vtrain_obs::enabled() {
        let reg = vtrain_obs::global();
        reg.counter("cluster.traces").inc();
        reg.counter("cluster.jobs").add(jobs.len() as u64);
        reg.counter("cluster.events_processed").add(outcome.events_processed);
        reg.counter("cluster.cross_rack_rounds").add(outcome.cross_rack_rounds);
        // Worst spanning-job slowdown factor, in permille (1000 = none).
        reg.gauge("cluster.contention_slowdown")
            .set_max((state.max_penalty * 1000.0).round() as u64);
        let jct = reg.histogram("cluster.jct_ms");
        for (o, j) in outcome.outcomes.iter().zip(jobs) {
            if let Some(t) = o.jct(j) {
                jct.record(t.as_nanos() / 1_000_000);
            }
        }
    }
    outcome
}

/// Elastic reallocation at an event boundary: returns every granted GPU to
/// the pool, then re-grants from scratch.
fn reallocate(
    active: &mut [Active],
    jobs: &[JobSpec],
    profiles: &[&ThroughputProfile],
    pool: &mut CapacityPool,
    now: f64,
) {
    pool.release_all();
    for a in active.iter_mut() {
        a.alloc = 0;
    }

    // Phase 1: deadline jobs, earliest deadline first, get their minimum
    // sufficient allocation; deadline-free jobs their minimal rung.
    let mut idxs: Vec<usize> = (0..active.len()).collect();
    idxs.sort_by(|&x, &y| {
        let dx = jobs[active[x].idx].deadline.map(|d| d.as_nanos()).unwrap_or(u64::MAX);
        let dy = jobs[active[y].idx].deadline.map(|d| d.as_nanos()).unwrap_or(u64::MAX);
        (dx, jobs[active[x].idx].arrival).cmp(&(dy, jobs[active[y].idx].arrival))
    });
    for &i in &idxs {
        let profile = profiles[active[i].idx];
        let want = match jobs[active[i].idx].deadline {
            Some(d) => {
                let left = TimeNs::from_secs_f64((d.as_secs_f64() - now).max(0.0));
                profile
                    .min_gpus_to_finish(active[i].remaining, left)
                    .unwrap_or_else(|| profile.max_gpus())
            }
            None => profile.min_gpus(),
        };
        let grant = if want <= pool.free() {
            Some(want)
        } else {
            // Best-effort: the largest rung that still fits.
            profile.rung(pool.free())
        };
        if let Some(g) = grant {
            let g = profile.rung(g).expect("grant snapped to a rung");
            assert!(pool.acquire(g), "phase-1 grant within free capacity");
            active[i].alloc = g;
        }
    }

    // Phase 2: spend leftovers on the best marginal speed-up per GPU.
    loop {
        let mut best: Option<(usize, usize, f64)> = None; // (job, new rung, gain/gpu)
        for (i, a) in active.iter().enumerate() {
            let profile = profiles[a.idx];
            let cur = a.alloc;
            let cur_time = profile.iter_time(cur.max(profile.min_gpus()));
            // Next strictly larger rung.
            let Some(&(g_next, t_next)) = profile.entries().iter().find(|&&(g, _)| g > cur) else {
                continue;
            };
            let delta = g_next - cur;
            if delta > pool.free() {
                continue;
            }
            let t_cur = if a.alloc == 0 {
                f64::INFINITY
            } else {
                cur_time.expect("current rung profiled").as_secs_f64()
            };
            let gain = if t_cur.is_infinite() {
                f64::INFINITY
            } else {
                a.remaining * (t_cur - t_next.as_secs_f64()) / delta as f64
            };
            if gain > 0.0 && best.is_none_or(|(_, _, bg)| gain > bg) {
                best = Some((i, g_next, gain));
            }
        }
        let Some((i, g_next, _)) = best else { break };
        assert!(pool.acquire(g_next - active[i].alloc), "upgrade within free capacity");
        active[i].alloc = g_next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogEntry;
    use crate::trace::{generate_trace, TraceConfig};

    fn t(secs: f64) -> TimeNs {
        TimeNs::from_secs_f64(secs)
    }

    fn profile(entries: &[(usize, f64)]) -> ThroughputProfile {
        ThroughputProfile::new(entries.iter().map(|&(g, s)| (g, t(s))).collect())
    }

    /// Catalog where the vTrain profile is strictly better at scale.
    fn catalog() -> ModelCatalog {
        let mut c = ModelCatalog::new();
        c.insert(CatalogEntry {
            name: "m".into(),
            global_batch: 64,
            baseline: profile(&[(8, 10.0), (16, 6.0), (32, 4.0)]),
            vtrain: profile(&[(8, 8.0), (16, 4.5), (32, 2.5), (64, 1.8)]),
        });
        c
    }

    fn job(id: usize, iters: u64, arrival_s: f64, deadline_s: Option<f64>) -> JobSpec {
        JobSpec {
            id,
            model_name: "m".into(),
            iterations: iters,
            arrival: t(arrival_s),
            deadline: deadline_s.map(t),
        }
    }

    #[test]
    fn lone_job_gets_the_largest_useful_allocation() {
        let jobs = vec![job(0, 100, 0.0, None)];
        let cfg = SchedulerConfig::new(64, ProfilePolicy::DataParallelOnly);
        let out = simulate_cluster(&jobs, &catalog(), &cfg);
        // Baseline tops out at 32 GPUs, 4 s/iter ⇒ 400 s.
        let jct = out.average_jct(&jobs).unwrap().as_secs_f64();
        assert!((jct - 400.0).abs() < 1.0, "jct {jct}");
        assert_eq!(out.deadline_satisfactory_ratio(), 1.0);
    }

    #[test]
    fn vtrain_profile_shortens_the_same_job() {
        let jobs = vec![job(0, 100, 0.0, None)];
        let base = simulate_cluster(
            &jobs,
            &catalog(),
            &SchedulerConfig::new(64, ProfilePolicy::DataParallelOnly),
        );
        let vt = simulate_cluster(
            &jobs,
            &catalog(),
            &SchedulerConfig::new(64, ProfilePolicy::VTrainOptimal),
        );
        // vTrain reaches 64 GPUs at 1.8 s/iter ⇒ 180 s.
        assert!(vt.makespan < base.makespan);
        assert!((vt.makespan.as_secs_f64() - 180.0).abs() < 1.0);
    }

    #[test]
    fn two_jobs_share_capacity() {
        let jobs = vec![job(0, 100, 0.0, None), job(1, 100, 0.0, None)];
        let cfg = SchedulerConfig::new(16, ProfilePolicy::DataParallelOnly);
        let out = simulate_cluster(&jobs, &catalog(), &cfg);
        // Each gets 8 GPUs at 10 s/iter ⇒ both finish at 1000 s.
        assert!((out.makespan.as_secs_f64() - 1000.0).abs() < 1.0);
        assert!(out.outcomes.iter().all(|o| o.completion.is_some()));
    }

    #[test]
    fn impossible_deadline_is_rejected_at_admission() {
        // 100 iterations, best baseline rate 4 s/iter ⇒ needs 400 s; only
        // 100 s of slack.
        let jobs = vec![job(0, 100, 0.0, Some(100.0))];
        let cfg = SchedulerConfig::new(64, ProfilePolicy::DataParallelOnly);
        let out = simulate_cluster(&jobs, &catalog(), &cfg);
        assert!(out.outcomes[0].violated);
        assert_eq!(out.deadline_satisfactory_ratio(), 0.0);
    }

    #[test]
    fn deadline_met_by_elastic_scale_up() {
        // Needs ≤ 6 s/iter ⇒ EDF hands it 16 GPUs even while a
        // deadline-free job competes.
        let jobs = vec![job(0, 100, 0.0, Some(650.0)), job(1, 50, 0.0, None)];
        let cfg = SchedulerConfig::new(24, ProfilePolicy::DataParallelOnly);
        let out = simulate_cluster(&jobs, &catalog(), &cfg);
        assert!(!out.outcomes[0].violated, "deadline job must be satisfied");
        assert!(out.outcomes[1].completion.is_some(), "background job still finishes");
    }

    #[test]
    fn missed_deadline_terminates_the_job_at_its_deadline() {
        // The job *passes* admission (32 GPUs make 100 iters in 400 s
        // against a 450 s deadline) but competition keeps it at 8 GPUs
        // (10 s/iter), so ElasticFlow kills it when the deadline passes.
        let jobs = vec![job(0, 100, 0.0, Some(405.0)), job(1, 2000, 0.0, Some(8010.0))];
        // 32 GPUs: EDF gives job 0 its minimal sufficient rung first; both
        // jobs need the whole cluster to hit their deadlines, so the later
        // deadline starves.
        let cfg = SchedulerConfig::new(32, ProfilePolicy::DataParallelOnly);
        let out = simulate_cluster(&jobs, &catalog(), &cfg);
        assert!(!out.outcomes[0].violated, "earliest deadline wins EDF");
        assert!(out.outcomes[1].violated, "starved job terminates at its deadline");
        assert!(out.outcomes[1].completion.is_none());
    }

    #[test]
    fn vtrain_never_worse_on_shared_traces() {
        let catalog = catalog();
        for seed in 1..=5 {
            let cfg_trace = TraceConfig {
                num_jobs: 24,
                seed,
                arrival_window: t(5_000.0),
                deadline_lambda: Some((0.5, 1.5)),
                iterations: (50, 200),
            };
            let jobs = generate_trace(&cfg_trace, &catalog);
            let base = simulate_cluster(
                &jobs,
                &catalog,
                &SchedulerConfig::new(64, ProfilePolicy::DataParallelOnly),
            );
            let vt = simulate_cluster(
                &jobs,
                &catalog,
                &SchedulerConfig::new(64, ProfilePolicy::VTrainOptimal),
            );
            assert!(
                vt.deadline_satisfactory_ratio() >= base.deadline_satisfactory_ratio() - 1e-9,
                "seed {seed}: vTrain ratio regressed"
            );
        }
    }

    #[test]
    fn racked_fleet_with_zero_penalty_matches_single_rack_exactly() {
        let cfg_trace = TraceConfig { num_jobs: 16, seed: 7, ..TraceConfig::default() };
        let cat = catalog();
        let jobs = generate_trace(&cfg_trace, &cat);
        let flat = SchedulerConfig::new(64, ProfilePolicy::VTrainOptimal);
        let racked = flat.with_racks(16, 0);
        let a = simulate_cluster(&jobs, &cat, &flat);
        let b = simulate_cluster(&jobs, &cat, &racked);
        // Placement changes, but a zero penalty must not move any time.
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.cross_rack_rounds, 0, "single rack never spans");
    }

    #[test]
    fn cross_rack_penalty_slows_spanning_jobs() {
        // One job wanting 32 GPUs on racks of 16: it must span 2 racks.
        let jobs = vec![job(0, 100, 0.0, None)];
        let base = SchedulerConfig::new(64, ProfilePolicy::DataParallelOnly);
        let flat = simulate_cluster(&jobs, &catalog(), &base);
        let racked = simulate_cluster(&jobs, &catalog(), &base.with_racks(16, 20));
        assert!(racked.cross_rack_rounds > 0, "32-GPU grant spans 16-GPU racks");
        // 400 s rack-local becomes 480 s at +20%.
        assert!((racked.makespan.as_secs_f64() - 480.0).abs() < 1.0, "{}", racked.makespan);
        assert!(racked.makespan > flat.makespan);
    }

    #[test]
    fn rack_local_jobs_escape_the_penalty() {
        // Two 100-iteration jobs on two racks of 16: each fits one rack
        // (ElasticFlow grants both their best rack-sized rung, 16 GPUs),
        // so even a huge penalty changes nothing.
        let jobs = vec![job(0, 100, 0.0, None), job(1, 100, 0.0, None)];
        let base = SchedulerConfig::new(32, ProfilePolicy::DataParallelOnly);
        let flat = simulate_cluster(&jobs, &catalog(), &base);
        let racked = simulate_cluster(&jobs, &catalog(), &base.with_racks(16, 100));
        assert_eq!(racked.cross_rack_rounds, 0);
        assert_eq!(flat.makespan, racked.makespan);
        assert_eq!(flat.outcomes, racked.outcomes);
    }

    #[test]
    fn fair_sharing_contention_slows_co_resident_spanning_jobs() {
        // Two 100-iteration jobs on a 64-GPU fleet carved into 16-GPU
        // racks: ElasticFlow grants each its best 32-GPU rung, so both
        // span two racks and their gradient traffic shares the spine.
        let pair = vec![job(0, 100, 0.0, None), job(1, 100, 0.0, None)];
        let solo = vec![job(0, 100, 0.0, None)];
        let base = SchedulerConfig::new(64, ProfilePolicy::DataParallelOnly).with_racks(16, 20);
        let fair = base.with_network(NetworkBackend::FairSharing);

        vtrain_obs::set_enabled(true);
        let contended = simulate_cluster(&pair, &catalog(), &fair);
        vtrain_obs::set_enabled(false);
        let scalar = simulate_cluster(&pair, &catalog(), &base);
        let alone = simulate_cluster(&solo, &catalog(), &fair);

        // Scalar fallback: both jobs pay the fixed +20% (4 s/iter ->
        // 4.8 s/iter, 480 s). Fair sharing: each drains at a 1/2 spine
        // share while both are in flight, so each pays +40% (560 s).
        assert!(contended.cross_rack_rounds > 0);
        assert!((scalar.makespan.as_secs_f64() - 480.0).abs() < 1.0, "{}", scalar.makespan);
        assert!((contended.makespan.as_secs_f64() - 560.0).abs() < 1.0, "{}", contended.makespan);
        assert!(
            contended.makespan > scalar.makespan,
            "co-resident spanning jobs must contend, not just pay the scalar"
        );
        // ... and slower than either job crossing the spine alone.
        assert!((alone.makespan.as_secs_f64() - 480.0).abs() < 1.0, "{}", alone.makespan);
        assert!(contended.makespan > alone.makespan);
        // The gauge records the worst slowdown factor in permille.
        assert!(vtrain_obs::global().gauge("cluster.contention_slowdown").get() >= 1400);
    }

    #[test]
    fn fair_sharing_with_a_sole_spanning_job_matches_the_scalar_exactly() {
        // One flow on the spine gets the whole link: the fair share is
        // exactly 1.0, so the penalty is bit-identical to the scalar's.
        let jobs = vec![job(0, 100, 0.0, None)];
        let base = SchedulerConfig::new(64, ProfilePolicy::DataParallelOnly).with_racks(16, 20);
        let scalar = simulate_cluster(&jobs, &catalog(), &base);
        let fair =
            simulate_cluster(&jobs, &catalog(), &base.with_network(NetworkBackend::FairSharing));
        assert_eq!(scalar.makespan, fair.makespan);
        assert_eq!(scalar.outcomes, fair.outcomes);
        assert_eq!(scalar.cross_rack_rounds, fair.cross_rack_rounds);
    }

    #[test]
    fn fair_sharing_leaves_rack_local_schedules_untouched() {
        // Both jobs fit one 16-GPU rack each: no flow ever crosses the
        // spine, so the backend must not move a single number.
        let jobs = vec![job(0, 100, 0.0, None), job(1, 100, 0.0, None)];
        let base = SchedulerConfig::new(32, ProfilePolicy::DataParallelOnly);
        let flat = simulate_cluster(&jobs, &catalog(), &base);
        let fair = simulate_cluster(
            &jobs,
            &catalog(),
            &base.with_racks(16, 100).with_network(NetworkBackend::FairSharing),
        );
        assert_eq!(fair.cross_rack_rounds, 0);
        assert_eq!(flat.makespan, fair.makespan);
        assert_eq!(flat.outcomes, fair.outcomes);
        assert_eq!(flat.events_processed, fair.events_processed);
    }

    #[test]
    fn num_racks_rounds_up() {
        let cfg = SchedulerConfig::new(100, ProfilePolicy::VTrainOptimal).with_racks(32, 10);
        assert_eq!(cfg.num_racks(), 4);
        assert_eq!(SchedulerConfig::new(64, ProfilePolicy::VTrainOptimal).num_racks(), 1);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg_trace = TraceConfig { num_jobs: 16, seed: 3, ..TraceConfig::default() };
        let cat = catalog();
        let jobs = generate_trace(&cfg_trace, &cat);
        let cfg = SchedulerConfig::new(64, ProfilePolicy::VTrainOptimal);
        let a = simulate_cluster(&jobs, &cat, &cfg);
        let b = simulate_cluster(&jobs, &cat, &cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.events_processed, b.events_processed);
        assert!(a.events_processed >= jobs.len() as u64, "every arrival is an event");
    }

    #[test]
    fn degenerate_zero_time_rung_terminates() {
        // A zero-duration rung makes every completion prediction land on
        // the current instant after nanosecond quantization; the 1 ns
        // forward bump must keep the event loop progressing instead of
        // re-dispatching a dt = 0 event forever.
        let mut cat = ModelCatalog::new();
        cat.insert(CatalogEntry {
            name: "m".into(),
            global_batch: 64,
            baseline: profile(&[(8, 0.0)]),
            vtrain: profile(&[(8, 0.0)]),
        });
        let jobs = vec![job(0, 5, 0.0, None), job(1, 5, 1.0, None)];
        let cfg = SchedulerConfig::new(8, ProfilePolicy::DataParallelOnly);
        let out = simulate_cluster(&jobs, &cat, &cfg);
        assert!(out.outcomes.iter().all(|o| o.completion.is_some()));
        assert!(out.makespan <= t(1.1));
    }

    #[test]
    fn oversized_job_cannot_run() {
        let mut cat = ModelCatalog::new();
        cat.insert(CatalogEntry {
            name: "m".into(),
            global_batch: 64,
            baseline: profile(&[(128, 1.0)]),
            vtrain: profile(&[(128, 1.0)]),
        });
        let jobs = vec![job(0, 10, 0.0, None)];
        let cfg = SchedulerConfig::new(64, ProfilePolicy::DataParallelOnly);
        let out = simulate_cluster(&jobs, &cat, &cfg);
        assert!(out.outcomes[0].violated);
        assert!(out.outcomes[0].completion.is_none());
    }
}
