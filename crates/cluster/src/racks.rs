//! Rack-aware placement of elastic GPU grants.
//!
//! The scheduler's allocation *amounts* come from the ElasticFlow
//! algorithm untouched; this module decides *where* each grant lands.
//! Jobs are packed best-fit-decreasing into racks so that as many as
//! possible stay rack-local; a job that must spill across racks pays the
//! configured cross-rack slowdown on its iteration time (its
//! data-parallel gradient exchange now crosses the rack spine).

/// Places the grants `gpus` (granted GPU counts, positionally keyed;
/// 0 = paused, never placed) into racks of `gpus_per_rack` GPUs carved
/// out of a `total_gpus` fleet, and returns how many racks each grant
/// spans (aligned with `gpus`; paused jobs span 0). When the fleet size
/// is not a rack multiple, the last rack holds only the remainder.
///
/// Deterministic best-fit-decreasing: grants are placed largest first
/// (ties by list position), each into the fullest rack that still holds
/// it whole; a grant no rack can hold whole spills greedily across the
/// emptiest racks.
///
/// # Panics
///
/// Panics if the grants exceed `total_gpus` in total.
pub fn assign_racks(gpus: &[usize], gpus_per_rack: usize, total_gpus: usize) -> Vec<usize> {
    let num_racks = total_gpus.div_ceil(gpus_per_rack);
    let mut free: Vec<usize> =
        (0..num_racks).map(|r| gpus_per_rack.min(total_gpus - r * gpus_per_rack)).collect();
    let mut spans = vec![0usize; gpus.len()];

    let mut order: Vec<usize> = (0..gpus.len()).filter(|&i| gpus[i] > 0).collect();
    order.sort_by_key(|&i| (usize::MAX - gpus[i], i));

    for &i in &order {
        let mut need = gpus[i];
        // Best fit: the rack with the least leftover that still holds the
        // whole grant (ties to the lowest rack index).
        if let Some(rack) =
            (0..num_racks).filter(|&r| free[r] >= need).min_by_key(|&r| (free[r], r))
        {
            free[rack] -= need;
            spans[i] = 1;
            continue;
        }
        // Spill: drain the emptiest racks first to minimize the span.
        let mut by_free: Vec<usize> = (0..num_racks).filter(|&r| free[r] > 0).collect();
        by_free.sort_by_key(|&r| (usize::MAX - free[r], r));
        let mut span = 0usize;
        for r in by_free {
            let take = free[r].min(need);
            free[r] -= take;
            need -= take;
            span += 1;
            if need == 0 {
                break;
            }
        }
        assert!(need == 0, "grants exceed the fleet's rack capacity");
        spans[i] = span;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rack_fleet_never_spans() {
        assert_eq!(assign_racks(&[8, 16, 32], 64, 64), vec![1, 1, 1]);
    }

    #[test]
    fn jobs_pack_rack_locally_when_possible() {
        // Two racks of 32: 32 + 16 + 16 fits with zero spills.
        assert_eq!(assign_racks(&[16, 32, 16], 32, 64), vec![1, 1, 1]);
    }

    #[test]
    fn oversized_grant_spans_the_fewest_racks() {
        // 48 GPUs cannot fit one 32-rack: spans exactly 2.
        let spans = assign_racks(&[48, 8], 32, 128);
        assert_eq!(spans[0], 2);
        assert_eq!(spans[1], 1);
    }

    #[test]
    fn fragmentation_forces_a_spill() {
        // Racks of 16: three 12-GPU jobs leave 4 free in three racks; the
        // final 12-GPU job must gather leftovers across 3 racks.
        let spans = assign_racks(&[12, 12, 12, 12], 16, 64);
        assert_eq!(spans, vec![1, 1, 1, 1], "a whole empty rack remains for the fourth job");
        let spans = assign_racks(&[12, 12, 12, 12], 16, 48);
        assert_eq!(&spans[..3], &[1, 1, 1]);
        assert_eq!(spans[3], 3, "leftover fragments span three racks");
    }

    #[test]
    fn partial_last_rack_has_no_phantom_capacity() {
        // 100-GPU fleet in 32-GPU racks: the 4th rack holds only 4 GPUs,
        // so the 16-GPU grant cannot sit there whole — it must span the
        // leftovers (with phantom capacity it would wrongly fit).
        let spans = assign_racks(&[32, 32, 20, 16], 32, 100);
        assert_eq!(&spans[..3], &[1, 1, 1]);
        assert_eq!(spans[3], 2, "the remainder rack holds 4 GPUs, not 32");
        // And total capacity is the fleet size, not racks × rack size.
        let spans = assign_racks(&[96, 4], 32, 100);
        assert_eq!(spans, vec![3, 1]);
    }

    #[test]
    fn paused_jobs_are_not_placed() {
        assert_eq!(assign_racks(&[0, 8, 0], 8, 16), vec![0, 1, 0]);
    }

    #[test]
    fn placement_is_deterministic() {
        let g = [8, 24, 8, 16, 32];
        assert_eq!(assign_racks(&g, 32, 96), assign_racks(&g, 32, 96));
    }

    #[test]
    #[should_panic(expected = "rack capacity")]
    fn over_capacity_panics() {
        let _ = assign_racks(&[64], 16, 32);
    }
}
