//! Per-model throughput profiles and the model catalog.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use vtrain_core::search::{SearchLimits, Sweep};
use vtrain_core::Estimator;
use vtrain_model::{ModelConfig, TimeNs};
use vtrain_parallel::{ParallelConfig, PipelineSchedule};

/// How a job's throughput-vs-GPUs profile is obtained (§V-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfilePolicy {
    /// ElasticFlow baseline: fix the minimal feasible tensor/pipeline
    /// degrees and scale only along data parallelism.
    DataParallelOnly,
    /// vTrain: the best plan per GPU count from full design-space
    /// exploration.
    VTrainOptimal,
}

/// A job's profiled iteration time as a function of allocated GPUs.
///
/// Entries are kept sorted by GPU count with strictly improving iteration
/// times (an allocation that doesn't help is never chosen over a smaller
/// one), which makes allocation reasoning monotone.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThroughputProfile {
    entries: Vec<(usize, TimeNs)>,
}

impl ThroughputProfile {
    /// Builds a profile from raw `(gpus, iteration_time)` samples: sorts by
    /// GPU count and prunes entries that don't strictly improve on a
    /// smaller allocation.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn new(mut samples: Vec<(usize, TimeNs)>) -> Self {
        assert!(!samples.is_empty(), "profile needs at least one sample");
        samples.sort_by_key(|&(g, t)| (g, t));
        samples.dedup_by_key(|&mut (g, _)| g);
        let mut entries: Vec<(usize, TimeNs)> = Vec::with_capacity(samples.len());
        for (g, t) in samples {
            match entries.last() {
                Some(&(_, best)) if t >= best => {}
                _ => entries.push((g, t)),
            }
        }
        ThroughputProfile { entries }
    }

    /// Profiled `(gpus, iteration_time)` rungs, ascending GPUs.
    pub fn entries(&self) -> &[(usize, TimeNs)] {
        &self.entries
    }

    /// Smallest allocation the job can run on.
    pub fn min_gpus(&self) -> usize {
        self.entries[0].0
    }

    /// Largest profiled allocation.
    pub fn max_gpus(&self) -> usize {
        self.entries[self.entries.len() - 1].0
    }

    /// Iteration time at the best rung not exceeding `gpus` (None if even
    /// the smallest rung doesn't fit).
    pub fn iter_time(&self, gpus: usize) -> Option<TimeNs> {
        self.entries.iter().take_while(|&&(g, _)| g <= gpus).map(|&(_, t)| t).last()
    }

    /// The rung (GPU count) realizing [`ThroughputProfile::iter_time`].
    pub fn rung(&self, gpus: usize) -> Option<usize> {
        self.entries.iter().take_while(|&&(g, _)| g <= gpus).map(|&(g, _)| g).last()
    }

    /// The smallest rung that finishes `remaining_iters` within
    /// `time_left`, if any.
    pub fn min_gpus_to_finish(&self, remaining_iters: f64, time_left: TimeNs) -> Option<usize> {
        if remaining_iters <= 0.0 {
            return Some(self.min_gpus());
        }
        self.entries
            .iter()
            .find(|&&(_, t)| t.as_secs_f64() * remaining_iters <= time_left.as_secs_f64())
            .map(|&(g, _)| g)
    }

    /// Standalone duration of `iterations` at the minimal allocation
    /// (deadline reference, §V-B).
    pub fn reference_duration(&self, iterations: u64) -> TimeNs {
        TimeNs::from_secs_f64(self.entries[0].1.as_secs_f64() * iterations as f64)
    }

    /// True if `self` is pointwise at least as fast as `other` wherever
    /// both are defined — the guarantee vTrain profiles give over the
    /// baseline (§V-B).
    pub fn dominates(&self, other: &ThroughputProfile) -> bool {
        other.entries.iter().all(|&(g, t_other)| match self.iter_time(g) {
            Some(t_self) => t_self <= t_other,
            None => false,
        })
    }
}

/// One catalog model with both profiles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// Catalog key.
    pub name: String,
    /// Global batch the job trains with (Table III).
    pub global_batch: usize,
    /// ElasticFlow-baseline profile.
    pub baseline: ThroughputProfile,
    /// vTrain-informed profile.
    pub vtrain: ThroughputProfile,
}

/// The set of models jobs are drawn from, with pre-computed profiles.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ModelCatalog {
    entries: HashMap<String, CatalogEntry>,
}

impl ModelCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        ModelCatalog::default()
    }

    /// Inserts an entry keyed by its name.
    pub fn insert(&mut self, entry: CatalogEntry) {
        self.entries.insert(entry.name.clone(), entry);
    }

    /// Looks up an entry.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Profile of `name` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the model is not in the catalog.
    pub fn profile(&self, name: &str, policy: ProfilePolicy) -> &ThroughputProfile {
        let entry = self.entries.get(name).unwrap_or_else(|| panic!("unknown model `{name}`"));
        match policy {
            ProfilePolicy::DataParallelOnly => &entry.baseline,
            ProfilePolicy::VTrainOptimal => &entry.vtrain,
        }
    }

    /// Catalog keys in sorted order (deterministic trace generation).
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of catalog entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The minimal `(t, p)` the baseline keeps for a model: the smallest
/// node-aligned tensor degree and even pipeline depth whose `d = 1` plan
/// fits GPU memory (§V-B gives 8-way TP + 2-way PP for the 39.1B model).
fn baseline_min_plan(
    estimator: &Estimator,
    model: &ModelConfig,
    global_batch: usize,
) -> Option<(usize, usize)> {
    let gpn = estimator.cluster().gpus_per_node;
    let t = {
        let mut t = gpn.min(8);
        while t > 1
            && (!model.num_heads().is_multiple_of(t) || !model.hidden_size().is_multiple_of(t))
        {
            t /= 2;
        }
        t
    };
    let depths: Vec<usize> =
        (1..=model.num_layers()).filter(|&p| model.num_layers().is_multiple_of(p)).collect();
    for &p in &depths {
        let plan = ParallelConfig::builder()
            .tensor(t)
            .data(1)
            .pipeline(p)
            .micro_batch(1)
            .global_batch(global_batch)
            .build()
            .ok()?;
        if plan.validate(model, estimator.cluster()).is_ok() {
            return Some((t, p));
        }
    }
    None
}

/// Builds both profiles for a model over a ladder of GPU counts up to the
/// cluster size.
///
/// The baseline profile sweeps only the data-parallel degree at the minimal
/// `(t, p)`; the vTrain profile takes the best plan per GPU count from a
/// full design-space exploration with `limits`.
pub fn build_catalog(
    estimator: &Estimator,
    models: &[(ModelConfig, usize)],
    limits: &SearchLimits,
    threads: usize,
) -> ModelCatalog {
    let mut catalog = ModelCatalog::new();
    let cluster_gpus = estimator.cluster().total_gpus;
    for (model, global_batch) in models {
        // --- baseline: data-parallel-only scaling.
        let mut baseline_samples = Vec::new();
        if let Some((t, p)) = baseline_min_plan(estimator, model, *global_batch) {
            let mut d = 1usize;
            while t * p * d <= cluster_gpus {
                if global_batch.is_multiple_of(d) {
                    // Give the baseline its best micro-batch (profiling the
                    // DP dimension includes batching, per ElasticFlow).
                    let mut best: Option<TimeNs> = None;
                    let mut m = 1usize;
                    while m <= 8 && (global_batch / d).is_multiple_of(m) {
                        let plan = ParallelConfig::builder()
                            .tensor(t)
                            .data(d)
                            .pipeline(p)
                            .micro_batch(m)
                            .global_batch(*global_batch)
                            .build()
                            .expect("divisibility checked");
                        if let Ok(est) = estimator.estimate(model, &plan) {
                            best = Some(match best {
                                Some(b) => b.min(est.iteration_time),
                                None => est.iteration_time,
                            });
                        }
                        m *= 2;
                    }
                    if let Some(t_best) = best {
                        baseline_samples.push((t * p * d, t_best));
                    }
                }
                d *= 2;
            }
        }
        if baseline_samples.is_empty() {
            continue;
        }
        let baseline = ThroughputProfile::new(baseline_samples);

        // --- vTrain: best plan per GPU count from the full DSE (the
        // sweep shares the estimator's profile cache across models too;
        // per-model throughput lives in `outcome.stats` should a caller
        // want to report it).
        let outcome = Sweep::on(estimator, model)
            .batch(*global_batch)
            .schedule(PipelineSchedule::OneFOneB)
            .limits(*limits)
            .threads(threads)
            .run()
            .into_outcome();
        let mut best_per_gpus: HashMap<usize, TimeNs> = HashMap::new();
        for p in &outcome.points {
            best_per_gpus
                .entry(p.estimate.num_gpus)
                .and_modify(|t| *t = (*t).min(p.estimate.iteration_time))
                .or_insert(p.estimate.iteration_time);
        }
        // vTrain knows at least everything the baseline profiled.
        for &(g, t) in baseline.entries() {
            best_per_gpus.entry(g).and_modify(|x| *x = (*x).min(t)).or_insert(t);
        }
        let vtrain = ThroughputProfile::new(best_per_gpus.into_iter().collect());

        catalog.insert(CatalogEntry {
            name: model.name().to_owned(),
            global_batch: *global_batch,
            baseline,
            vtrain,
        });
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_model::presets;
    use vtrain_parallel::ClusterSpec;

    fn t(secs: f64) -> TimeNs {
        TimeNs::from_secs_f64(secs)
    }

    #[test]
    fn profile_prunes_non_improving_rungs() {
        let p = ThroughputProfile::new(vec![(8, t(10.0)), (16, t(12.0)), (32, t(5.0))]);
        assert_eq!(p.entries().len(), 2);
        assert_eq!(p.min_gpus(), 8);
        assert_eq!(p.iter_time(16), Some(t(10.0)));
        assert_eq!(p.iter_time(32), Some(t(5.0)));
        assert_eq!(p.iter_time(4), None);
    }

    #[test]
    fn min_gpus_to_finish_picks_smallest_sufficient_rung() {
        let p = ThroughputProfile::new(vec![(8, t(10.0)), (16, t(6.0)), (32, t(4.0))]);
        // 100 iterations in 700s: needs ≤7s/iter ⇒ 16 GPUs.
        assert_eq!(p.min_gpus_to_finish(100.0, TimeNs::from_secs(700)), Some(16));
        // Impossible even at 32 GPUs.
        assert_eq!(p.min_gpus_to_finish(100.0, TimeNs::from_secs(100)), None);
        // Already done.
        assert_eq!(p.min_gpus_to_finish(0.0, TimeNs::ZERO), Some(8));
    }

    #[test]
    fn dominance_is_pointwise() {
        let fast = ThroughputProfile::new(vec![(8, t(8.0)), (16, t(4.0))]);
        let slow = ThroughputProfile::new(vec![(8, t(10.0)), (16, t(6.0))]);
        assert!(fast.dominates(&slow));
        assert!(!slow.dominates(&fast));
        assert!(fast.dominates(&fast));
    }

    #[test]
    fn built_catalog_vtrain_dominates_baseline() {
        let estimator = Estimator::builder(ClusterSpec::aws_p4d(64)).build();
        let models = vec![(presets::megatron("1.7B"), 64usize)];
        let limits =
            SearchLimits { max_tensor: 8, max_data: 8, max_pipeline: 4, max_micro_batch: 4 };
        let catalog = build_catalog(&estimator, &models, &limits, 4);
        assert_eq!(catalog.len(), 1);
        let entry = catalog.get("Megatron 1.7B").unwrap();
        assert!(
            entry.vtrain.dominates(&entry.baseline),
            "vTrain profile must be pointwise at least as fast"
        );
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        let catalog = ModelCatalog::new();
        let _ = catalog.profile("nope", ProfilePolicy::VTrainOptimal);
    }
}
