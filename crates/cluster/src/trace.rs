//! Synthetic workload traces (stand-in for the Microsoft ITP cluster
//! traces, per DESIGN.md).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use vtrain_model::TimeNs;

use crate::catalog::{ModelCatalog, ProfilePolicy};
use crate::job::JobSpec;

/// Parameters of one generated trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceConfig {
    /// Number of jobs.
    pub num_jobs: usize,
    /// RNG seed (a trace id; the paper samples nine trace windows).
    pub seed: u64,
    /// All arrivals fall within this window from time zero. `ZERO` makes
    /// every job arrive at t = 0 (the makespan experiments, Fig. 14).
    pub arrival_window: TimeNs,
    /// Deadline factor range `λ ∈ U[lo, hi]`; `None` disables deadlines
    /// (the JCT experiments, Fig. 13).
    pub deadline_lambda: Option<(f64, f64)>,
    /// Uniform range of requested training iterations.
    pub iterations: (u64, u64),
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_jobs: 64,
            seed: 1,
            // The paper models a 400-hour cluster window; arrivals land in
            // the first quarter.
            arrival_window: TimeNs::from_secs(100 * 3600),
            deadline_lambda: Some((0.5, 1.5)),
            iterations: (50, 400),
        }
    }
}

/// Generates a deterministic trace over the catalog's models.
///
/// Inter-arrival times follow a heavy-tailed log-normal (matching the bursty
/// arrivals of production ML clusters), rescaled so the last arrival lands
/// inside the window. Each job picks a catalog model uniformly; its deadline
/// is `arrival + λ · standalone duration` with the standalone duration taken
/// from the *baseline* profile's minimal allocation, exactly the reference
/// both compared systems share.
///
/// # Panics
///
/// Panics if the catalog is empty or `num_jobs == 0`.
pub fn generate_trace(cfg: &TraceConfig, catalog: &ModelCatalog) -> Vec<JobSpec> {
    assert!(cfg.num_jobs > 0, "trace needs at least one job");
    assert!(!catalog.is_empty(), "catalog must not be empty");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let names = catalog.names();

    // Log-normal inter-arrivals (σ = 1.2 gives the bursty shape of the ITP
    // trace), rescaled to the window.
    let arrivals: Vec<TimeNs> = if cfg.arrival_window == TimeNs::ZERO {
        vec![TimeNs::ZERO; cfg.num_jobs]
    } else {
        let dist = LogNormal::new(0.0, 1.2).expect("valid lognormal");
        let gaps: Vec<f64> = (0..cfg.num_jobs).map(|_| dist.sample(&mut rng)).collect();
        let total: f64 = gaps.iter().sum();
        let scale = cfg.arrival_window.as_secs_f64() / total;
        let mut now = 0.0;
        gaps.iter()
            .map(|g| {
                now += g * scale;
                TimeNs::from_secs_f64(now)
            })
            .collect()
    };

    (0..cfg.num_jobs)
        .map(|id| {
            let name = names[rng.gen_range(0..names.len())].to_owned();
            let iterations = rng.gen_range(cfg.iterations.0..=cfg.iterations.1);
            let arrival = arrivals[id];
            let deadline = cfg.deadline_lambda.map(|(lo, hi)| {
                let lambda = rng.gen_range(lo..hi);
                let standalone = catalog
                    .profile(&name, ProfilePolicy::DataParallelOnly)
                    .reference_duration(iterations);
                arrival + standalone.scale(lambda)
            });
            JobSpec { id, model_name: name, iterations, arrival, deadline }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CatalogEntry, ThroughputProfile};

    fn catalog() -> ModelCatalog {
        let mut c = ModelCatalog::new();
        for (name, iter_secs) in [("small", 2.0), ("large", 8.0)] {
            let profile = ThroughputProfile::new(vec![
                (8, TimeNs::from_secs_f64(iter_secs)),
                (16, TimeNs::from_secs_f64(iter_secs / 1.8)),
            ]);
            c.insert(CatalogEntry {
                name: name.into(),
                global_batch: 64,
                baseline: profile.clone(),
                vtrain: profile,
            });
        }
        c
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let cfg = TraceConfig { num_jobs: 32, seed: 7, ..TraceConfig::default() };
        let a = generate_trace(&cfg, &catalog());
        let b = generate_trace(&cfg, &catalog());
        assert_eq!(a, b);
        let c = generate_trace(&TraceConfig { seed: 8, ..cfg }, &catalog());
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn arrivals_respect_window_and_order() {
        let cfg = TraceConfig { num_jobs: 50, ..TraceConfig::default() };
        let jobs = generate_trace(&cfg, &catalog());
        let mut prev = TimeNs::ZERO;
        for j in &jobs {
            assert!(j.arrival >= prev, "arrivals sorted");
            prev = j.arrival;
        }
        assert!(prev <= cfg.arrival_window + TimeNs::from_secs(1));
    }

    #[test]
    fn zero_window_means_simultaneous_arrival() {
        let cfg = TraceConfig {
            num_jobs: 16,
            arrival_window: TimeNs::ZERO,
            deadline_lambda: None,
            ..TraceConfig::default()
        };
        let jobs = generate_trace(&cfg, &catalog());
        assert!(jobs.iter().all(|j| j.arrival == TimeNs::ZERO && j.deadline.is_none()));
    }

    #[test]
    fn deadlines_scale_with_standalone_duration() {
        let cfg = TraceConfig { num_jobs: 64, ..TraceConfig::default() };
        let cat = catalog();
        for j in generate_trace(&cfg, &cat) {
            let standalone = cat
                .profile(&j.model_name, ProfilePolicy::DataParallelOnly)
                .reference_duration(j.iterations);
            let d = j.deadline.unwrap();
            let lambda = d.saturating_sub(j.arrival).as_secs_f64() / standalone.as_secs_f64();
            assert!((0.5..1.5).contains(&lambda), "λ = {lambda}");
        }
    }
}
