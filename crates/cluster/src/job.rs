//! Training jobs and their scheduling outcomes.

use serde::{Deserialize, Serialize};
use vtrain_model::TimeNs;

/// One LLM training job submitted to the shared cluster.
///
/// Serverless model (§V-B): the user specifies *what* to train and an
/// optional deadline; the platform owns every systems decision.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job id.
    pub id: usize,
    /// Catalog key of the model being trained (Table III entry).
    pub model_name: String,
    /// Training iterations requested.
    pub iterations: u64,
    /// Submission time.
    pub arrival: TimeNs,
    /// Absolute completion deadline, if any.
    pub deadline: Option<TimeNs>,
}

/// The scheduler's verdict on one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job id.
    pub id: usize,
    /// Completion time (None if terminated unfinished).
    pub completion: Option<TimeNs>,
    /// True if the job had a deadline and missed it (ElasticFlow terminates
    /// such jobs at their deadline).
    pub violated: bool,
}

impl JobOutcome {
    /// Job completion time (arrival → completion), if the job finished.
    pub fn jct(&self, spec: &JobSpec) -> Option<TimeNs> {
        self.completion.map(|c| c.saturating_sub(spec.arrival))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jct_subtracts_arrival() {
        let spec = JobSpec {
            id: 1,
            model_name: "m".into(),
            iterations: 10,
            arrival: TimeNs::from_secs(100),
            deadline: None,
        };
        let done = JobOutcome { id: 1, completion: Some(TimeNs::from_secs(250)), violated: false };
        assert_eq!(done.jct(&spec), Some(TimeNs::from_secs(150)));
        let dead = JobOutcome { id: 1, completion: None, violated: true };
        assert_eq!(dead.jct(&spec), None);
    }
}
