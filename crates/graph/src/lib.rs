//! # vtrain-graph
//!
//! Operator-granularity execution graphs for LLM training (paper §III-B).
//!
//! The graph captures *which* computation and communication operators run,
//! *where* (which pipeline stage's representative GPU), and *in what order*
//! (dependency edges), as dictated by the model architecture and the
//! `(t, d, p)` 3D-parallelism plan:
//!
//! * tensor parallelism inserts an intra-node All-Reduce after every MHA and
//!   FFN block in both passes (Fig. 6);
//! * data parallelism inserts gradient All-Reduces — one per gradient bucket
//!   when bucketing is enabled, overlappable with backward compute
//!   (Fig. 5);
//! * pipeline parallelism inserts Send-Receive operators at stage
//!   boundaries, ordered by the GPipe or 1F1B schedule (Fig. 7);
//! * the repetitive structure of stacked identical decoder layers yields a
//!   tiny set of [`OpSignature`]s — the paper's *necessary operators* —
//!   regardless of layer count or micro-batch count (§III-C).
//!
//! TP ranks and DP replicas are symmetric, so one pipeline replica with one
//! representative GPU per stage is materialized (cf. the paper's Fig. 8,
//! which also draws one GPU per node).
//!
//! # Examples
//!
//! ```
//! use vtrain_graph::{build_op_graph, GraphOptions};
//! use vtrain_model::presets;
//! use vtrain_parallel::ParallelConfig;
//!
//! let model = presets::megatron("1.7B");
//! let plan = ParallelConfig::builder()
//!     .tensor(2).data(2).pipeline(2).micro_batch(2).global_batch(16)
//!     .build()?;
//! let graph = build_op_graph(&model, &plan, &GraphOptions::default());
//! assert!(graph.num_nodes() > 0);
//! // Necessary operators stay O(1) in micro-batch and layer count.
//! assert!(graph.necessary_operators().len() < 16);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod graph;
mod ops;

pub use builder::{
    build_op_graph, build_op_graph_into, plan_shape_key, plan_signatures, stage_comm_ops,
    stage_weight_params, visit_plan_slots, ChainOp, GraphOptions, GraphSink, PlanShapeKey, SlotOp,
    StageCommOps,
};
pub use graph::{OpGraph, OpNode, StreamKind};
pub use ops::{CommKind, CommOp, CommScope, CompKind, ComputeOp, Op, OpSignature};
