//! The operator-granularity DAG container.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::ops::{Op, OpSignature};

/// Execution stream a node occupies on its device.
///
/// Compute kernels and the sequentially-dependent TP All-Reduces serialize
/// on the compute stream; DP gradient All-Reduces and pipeline sends run on
/// a separate communication stream so they can overlap compute (Fig. 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// The device's main compute stream.
    Compute,
    /// The device's NCCL communication stream.
    Comm,
}

/// One vertex of the operator-granularity graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpNode {
    /// Owning device (pipeline-stage index of the representative GPU).
    pub device: u32,
    /// Stream the node occupies on its device.
    pub stream: StreamKind,
    /// The operator.
    pub op: Op,
}

/// The operator-granularity execution DAG for one training iteration.
///
/// Nodes are stored in creation order, which is also a valid per-stream
/// program order; edges point from producers to consumers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OpGraph {
    nodes: Vec<OpNode>,
    children: Vec<Vec<u32>>,
    num_devices: u32,
}

impl OpGraph {
    /// Creates an empty graph over `num_devices` representative GPUs.
    pub fn new(num_devices: u32) -> Self {
        OpGraph { nodes: Vec::new(), children: Vec::new(), num_devices }
    }

    /// Number of representative devices (pipeline stages).
    pub fn num_devices(&self) -> u32 {
        self.num_devices
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes in creation (program) order.
    pub fn nodes(&self) -> &[OpNode] {
        &self.nodes
    }

    /// The node at `idx`.
    pub fn node(&self, idx: u32) -> &OpNode {
        &self.nodes[idx as usize]
    }

    /// Direct successors of `idx`.
    pub fn children(&self, idx: u32) -> &[u32] {
        &self.children[idx as usize]
    }

    /// Appends a node and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the device index is out of range.
    pub fn push(&mut self, node: OpNode) -> u32 {
        assert!(node.device < self.num_devices, "device out of range");
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        self.children.push(Vec::new());
        idx
    }

    /// Adds a dependency edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the edge is a self-loop.
    pub fn add_edge(&mut self, from: u32, to: u32) {
        assert!((to as usize) < self.nodes.len(), "edge target out of range");
        assert!((from as usize) < self.nodes.len(), "edge source out of range");
        assert!(from != to, "self-dependency on node {from}");
        self.children[from as usize].push(to);
    }

    /// In-degree of every node (the `ref` counts of Algorithm 1).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.nodes.len()];
        for kids in &self.children {
            for &k in kids {
                deg[k as usize] += 1;
            }
        }
        deg
    }

    /// Total edge count.
    pub fn num_edges(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// The deduplicated set of compute-operator signatures — the paper's
    /// *necessary operators*, the only things the profiler must execute.
    pub fn necessary_operators(&self) -> HashSet<OpSignature> {
        self.nodes.iter().filter_map(|n| n.op.signature().copied()).collect()
    }

    /// Verifies the graph is a DAG (Kahn's algorithm visits every node).
    pub fn is_acyclic(&self) -> bool {
        let mut deg = self.in_degrees();
        let mut queue: Vec<u32> =
            (0..self.nodes.len() as u32).filter(|&i| deg[i as usize] == 0).collect();
        let mut visited = 0usize;
        while let Some(u) = queue.pop() {
            visited += 1;
            for &c in self.children(u) {
                deg[c as usize] -= 1;
                if deg[c as usize] == 0 {
                    queue.push(c);
                }
            }
        }
        visited == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CommKind, CommOp, CommScope};
    use vtrain_model::Bytes;

    fn comm_node(device: u32) -> OpNode {
        OpNode {
            device,
            stream: StreamKind::Comm,
            op: Op::Comm(CommOp {
                kind: CommKind::PpSendRecv,
                bytes: Bytes::from_mib(1),
                ranks: 2,
                scope: CommScope::InterNode,
                placement: vtrain_net::GroupPlacement::pair(1),
                overlappable: false,
                concurrent_groups: 1,
            }),
        }
    }

    #[test]
    fn push_and_edges_track_degrees() {
        let mut g = OpGraph::new(2);
        let a = g.push(comm_node(0));
        let b = g.push(comm_node(1));
        let c = g.push(comm_node(1));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.in_degrees(), vec![0, 1, 2]);
        assert_eq!(g.children(a), &[b, c]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn cycles_are_detected() {
        let mut g = OpGraph::new(1);
        let a = g.push(comm_node(0));
        let b = g.push(comm_node(0));
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(!g.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "self-dependency")]
    fn self_loops_rejected() {
        let mut g = OpGraph::new(1);
        let a = g.push(comm_node(0));
        g.add_edge(a, a);
    }

    #[test]
    #[should_panic(expected = "device out of range")]
    fn device_bounds_checked() {
        let mut g = OpGraph::new(1);
        g.push(comm_node(5));
    }
}
