//! Constructs the operator-granularity execution graph from a model and a
//! 3D-parallelism plan (paper §III-B, Figs. 5/6/8).

use std::collections::HashSet;

use vtrain_model::{Bytes, ModelConfig, TimeNs};
use vtrain_net::{GroupPlacement, TierSpec, Topology};
use vtrain_parallel::{layer_partition, ParallelConfig, Pass, ProcessGroups, StageSlot};

use crate::graph::{OpGraph, OpNode, StreamKind};
use crate::ops::{CommKind, CommOp, CommScope, CompKind, ComputeOp, Op, OpSignature};

/// Receives the nodes and edges of graph construction.
///
/// [`OpGraph`] is the canonical sink; consumers that only need a derived
/// artifact (e.g. a lowered task graph) can implement this to skip
/// materializing the operator graph entirely.
pub trait GraphSink {
    /// Appends a node, returning its index (dense, starting at 0).
    fn push(&mut self, node: OpNode) -> u32;
    /// [`GraphSink::push`] with the node's *latency slot* attached: the
    /// index into the plan's canonical slot enumeration
    /// ([`visit_plan_slots`]) identifying which latency source prices
    /// this node. The builder routes every node through this method;
    /// sinks that don't track slots inherit the default, which forwards
    /// to `push`.
    ///
    /// Slot ids are *structural*: two plans with equal
    /// [`plan_shape_key`]s assign the same slot to the node at the same
    /// index, which is what licenses delta-lowering (re-pricing a cached
    /// graph by refreshing slot values only).
    fn push_slotted(&mut self, node: OpNode, slot: u32) -> u32 {
        let _ = slot;
        self.push(node)
    }
    /// Adds a dependency edge `from → to` between already-pushed nodes.
    fn add_edge(&mut self, from: u32, to: u32);
    /// Marks a chain-aggregation boundary on `device`'s compute stream.
    ///
    /// The builder guarantees that between two consecutive `cut` calls the
    /// compute-stream nodes of `device` form a pure program-order chain:
    /// no node other than the first receives an edge from outside the
    /// chain, and no node other than the last (at the moment the edge is
    /// added) sources an edge to outside it. Sinks that aggregate chains
    /// into single tasks (the sweep's compact replay) close their open run
    /// here; graph-materializing sinks ignore it.
    fn cut(&mut self, device: u32) {
        let _ = device;
    }
    /// Bulk emission of `pattern` repeated `repeat` times on `device`'s
    /// compute stream — the builder's layer-loop fast path. Returns the
    /// first node's index.
    ///
    /// The default expands to exactly the per-node calls the builder
    /// would otherwise make: each node goes through [`push_slotted`] and
    /// is chained after its predecessor (starting from `prev`, the last
    /// compute-stream node of `device`, if any) with [`add_edge`] — so
    /// graph-materializing sinks see an unchanged node/edge sequence.
    /// Aggregating sinks may instead account for the whole block in
    /// `O(pattern.len())`, provided they consume exactly
    /// `pattern.len() * repeat` node indices and treat the implied
    /// program-order chain as internal.
    ///
    /// `pattern` must be non-empty and `repeat >= 1`; the builder never
    /// issues empty blocks.
    ///
    /// [`push_slotted`]: GraphSink::push_slotted
    /// [`add_edge`]: GraphSink::add_edge
    fn push_chain(
        &mut self,
        device: u32,
        prev: Option<u32>,
        pattern: &[ChainOp],
        repeat: u32,
    ) -> u32 {
        let mut prev = prev;
        let mut first = None;
        for _ in 0..repeat {
            for item in pattern {
                let id = self.push_slotted(
                    OpNode { device, stream: StreamKind::Compute, op: item.op },
                    item.slot,
                );
                if first.is_none() {
                    first = Some(id);
                }
                if let Some(p) = prev {
                    self.add_edge(p, id);
                }
                prev = Some(id);
            }
        }
        first.expect("chain patterns emit at least one node")
    }
    /// Offers the sink a *block replication*: everything emitted since
    /// node `start_node` — a cut-aligned, single-device window of whole
    /// schedule slots — repeats `copies` more times with identical
    /// structure. A sink that accepts returns `true` and must behave as
    /// if the block's nodes, intra-block edges, and cut boundaries were
    /// re-emitted with all node indices shifted by the block's node count
    /// per copy; the builder then accounts for the copies arithmetically
    /// (records, program-order chain edges *into* each copy, id
    /// bookkeeping) and emits nothing further for them. A sink that
    /// returns `false` (the default) receives the copies as ordinary
    /// per-slot emission instead — graph-materializing sinks stay
    /// unchanged.
    fn replicate_block(&mut self, start_node: u32, copies: u32) -> bool {
        let _ = (start_node, copies);
        false
    }

    /// Adds `count` dependency edges forming an arithmetic *train*: edge
    /// `i` connects `from + i * from_stride → to + i * to_stride`.
    /// Equivalent to the corresponding [`GraphSink::add_edge`] loop (the
    /// default); aggregating sinks may resolve the endpoints by stride
    /// when the train stays inside replicated block regions.
    fn add_edge_train(&mut self, from: u32, from_stride: u32, to: u32, to_stride: u32, count: u32) {
        for i in 0..count {
            self.add_edge(from + i * from_stride, to + i * to_stride);
        }
    }
}

/// One operator of a repeated compute-stream emission pattern (see
/// [`GraphSink::push_chain`]).
#[derive(Clone, Copy, Debug)]
pub struct ChainOp {
    /// The operator each repetition emits.
    pub op: Op,
    /// Its latency slot (see [`GraphSink::push_slotted`]).
    pub slot: u32,
}

impl GraphSink for OpGraph {
    fn push(&mut self, node: OpNode) -> u32 {
        OpGraph::push(self, node)
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        OpGraph::add_edge(self, from, to)
    }
}

/// Tunables of graph construction.
#[derive(Clone, Debug)]
pub struct GraphOptions {
    /// GPUs per server node (decides which collectives cross nodes).
    pub gpus_per_node: usize,
    /// Nodes per rack, when the cluster has a rack tier (`None` places
    /// every node in one rack). Only affects the [`CommOp::placement`]
    /// geometry consumed by topology-aware communication models.
    pub nodes_per_rack: Option<usize>,
    /// Target gradient-bucket payload for DP bucketing (PyTorch DDP defaults
    /// to 25 MiB).
    pub dp_bucket_bytes: Bytes,
    /// Whether activation recomputation replays the forward inside each
    /// backward block.
    pub recompute: bool,
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions {
            gpus_per_node: 8,
            nodes_per_rack: None,
            dp_bucket_bytes: Bytes::from_mib(25),
            recompute: true,
        }
    }
}

impl GraphOptions {
    /// The shape-only topology placements are computed against (tier
    /// bandwidths are irrelevant to geometry and set to placeholders).
    fn shape_topology(&self) -> Topology {
        let unit = TierSpec::new(1.0, TimeNs::ZERO, 1.0);
        let topo = Topology::two_tier(self.gpus_per_node, unit, unit);
        match self.nodes_per_rack {
            Some(npr) => topo.with_rack_tier(npr, unit),
            None => topo,
        }
    }
}

/// Builds the execution graph of one training iteration for one pipeline
/// replica (TP ranks and DP replicas are symmetric; DP is represented by
/// its gradient All-Reduce operators).
///
/// # Panics
///
/// Panics if the plan's pipeline depth exceeds the model's layer count
/// (call [`ParallelConfig::validate`] first).
pub fn build_op_graph(model: &ModelConfig, plan: &ParallelConfig, opts: &GraphOptions) -> OpGraph {
    let mut graph = OpGraph::new(plan.pipeline() as u32);
    build_op_graph_into(model, plan, opts, &mut graph);
    debug_assert!(graph.is_acyclic(), "execution graph must be a DAG");
    graph
}

/// Streams one training iteration's nodes and edges into `sink` without
/// requiring an [`OpGraph`] — the allocation-free entry point for fused
/// lowering (the estimator maps nodes straight to tasks).
///
/// Emission order, node indices, and per-node edge order are identical to
/// [`build_op_graph`].
///
/// # Panics
///
/// Same conditions as [`build_op_graph`].
pub fn build_op_graph_into<S: GraphSink>(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    sink: &mut S,
) {
    Builder::new(model, plan, opts, sink).build();
}

/// The deduplicated *necessary operator* set of `(model, plan)` — exactly
/// the compute signatures [`build_op_graph`] emits — computed in O(p)
/// without constructing the graph (paper §III-C).
///
/// This is what lets a design-space sweep ask a shared profile cache for
/// only the signatures it is missing before any per-plan lowering work.
pub fn plan_signatures(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
) -> HashSet<OpSignature> {
    let sigs = SigFactory { model, plan, opts };
    let p = plan.pipeline();
    let partition = layer_partition(model.num_layers(), p);
    let mut out = HashSet::new();
    for (stage, layers) in partition.iter().enumerate() {
        if stage == 0 {
            out.insert(sigs.vocab(CompKind::EmbeddingFwd));
            out.insert(sigs.vocab(CompKind::EmbeddingBwd));
        }
        if stage == p - 1 {
            out.insert(sigs.vocab(CompKind::LmHeadFwd));
            out.insert(sigs.vocab(CompKind::LmHeadBwd));
        }
        if !layers.is_empty() {
            out.insert(sigs.layer(CompKind::MhaFwd));
            out.insert(sigs.layer(CompKind::FfnFwd));
            out.insert(sigs.layer(CompKind::MhaBwd));
            out.insert(sigs.layer(CompKind::FfnBwd));
        }
        out.insert(sigs.weight_update(sigs.stage_local_params(stage, layers.len())));
    }
    out
}

/// One entry of a plan's canonical latency-slot enumeration: the operator
/// a slot prices (see [`visit_plan_slots`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SlotOp {
    /// A compute-operator slot (priced via the profile cache).
    Compute(OpSignature),
    /// A communication-operator slot (priced analytically).
    Comm(CommOp),
}

/// Number of fixed layer/vocab compute slots heading every enumeration.
const FIXED_COMP_SLOTS: u32 = 8;

/// Slot index of a fixed layer/vocab compute kind (canonical order; the
/// per-stage `WeightUpdate` slots follow at `8 + stage`).
fn fixed_comp_slot(kind: CompKind) -> u32 {
    match kind {
        CompKind::EmbeddingFwd => 0,
        CompKind::LmHeadFwd => 1,
        CompKind::MhaFwd => 2,
        CompKind::FfnFwd => 3,
        CompKind::EmbeddingBwd => 4,
        CompKind::LmHeadBwd => 5,
        CompKind::MhaBwd => 6,
        CompKind::FfnBwd => 7,
        CompKind::WeightUpdate => unreachable!("weight updates use per-stage slots"),
    }
}

/// Enumerates the plan's latency slots in canonical order, calling `f`
/// with the operator each slot prices.
///
/// A *slot* is one distinct latency source of the lowered graph: every
/// node the builder emits carries a slot id (via
/// [`GraphSink::push_slotted`]) that indexes into this enumeration, and
/// two plans with equal [`plan_shape_key`]s assign identical slot ids to
/// positionally corresponding nodes. Re-pricing a cached graph for a new
/// plan therefore only requires re-running this enumeration — the basis
/// of delta-lowering across design-grid neighbors.
///
/// Canonical order (`p = plan.pipeline()`):
/// 1. the 8 fixed layer/vocab compute kinds (`fixed_comp_slot` order),
/// 2. `p` per-stage `WeightUpdate` signatures,
/// 3. the TP All-Reduce (only when `t > 1`),
/// 4. `p - 1` pipeline sends, by boundary,
/// 5. per-stage DP gradient All-Reduces in emission order (only when
///    `d > 1`; one per stage unbucketed, the `DpBuckets` sequence
///    otherwise).
///
/// # Panics
///
/// Panics if the pipeline is deeper than the model's layer count (call
/// [`ParallelConfig::validate`] first).
pub fn visit_plan_slots<F: FnMut(SlotOp)>(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    mut f: F,
) {
    let sigs = SigFactory { model, plan, opts };
    let comms = CommFactory::new(model, plan, opts);
    let p = plan.pipeline();
    let partition = layer_partition(model.num_layers(), p);
    f(SlotOp::Compute(sigs.vocab(CompKind::EmbeddingFwd)));
    f(SlotOp::Compute(sigs.vocab(CompKind::LmHeadFwd)));
    f(SlotOp::Compute(sigs.layer(CompKind::MhaFwd)));
    f(SlotOp::Compute(sigs.layer(CompKind::FfnFwd)));
    f(SlotOp::Compute(sigs.vocab(CompKind::EmbeddingBwd)));
    f(SlotOp::Compute(sigs.vocab(CompKind::LmHeadBwd)));
    f(SlotOp::Compute(sigs.layer(CompKind::MhaBwd)));
    f(SlotOp::Compute(sigs.layer(CompKind::FfnBwd)));
    for (stage, layers) in partition.iter().enumerate() {
        f(SlotOp::Compute(sigs.weight_update(sigs.stage_local_params(stage, layers.len()))));
    }
    if let Some(op) = comms.tp_all_reduce {
        f(SlotOp::Comm(op));
    }
    for boundary in 0..p.saturating_sub(1) {
        f(SlotOp::Comm(comms.pp_send(plan, boundary)));
    }
    if plan.data() > 1 {
        for (stage, layers) in partition.iter().enumerate() {
            if plan.gradient_bucketing() {
                for (_, bytes) in DpBuckets::new(model, plan, opts, &sigs, stage, layers.len()) {
                    f(SlotOp::Comm(comms.dp_all_reduce(bytes)));
                }
            } else {
                let bytes = unbucketed_dp_bytes(model, plan, opts, stage, layers.len());
                f(SlotOp::Comm(comms.dp_all_reduce(bytes)));
            }
        }
    }
}

/// The structural fingerprint of a lowered graph: two `(model, plan)`
/// pairs with equal keys (under the same [`GraphOptions`]) produce graphs
/// with identical node counts, edge lists, slot assignments, and
/// chain-aggregation cuts — only the slot *values* differ. This is the
/// applicability test for delta-lowering.
///
/// The key captures exactly what the builder's emission structure reads:
/// the layer partition (`num_layers`, `pipeline`), the per-stage program
/// (`schedule`, `n_micro`), whether TP/DP operators exist at all, and the
/// DP bucket geometry (`per_bucket` layers per bucket, which depends on
/// the gradient bytes per layer and hence on `t`). Everything else —
/// micro-batch size, hidden dims, topology tiers — only moves slot
/// values, which delta-lowering re-prices anyway.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanShapeKey {
    num_layers: usize,
    pipeline: usize,
    schedule: vtrain_parallel::PipelineSchedule,
    n_micro: usize,
    tensor_parallel: bool,
    data_parallel: bool,
    /// Layers per DP gradient bucket; 0 when DP sync is absent or
    /// unbucketed (a single per-stage All-Reduce either way).
    per_bucket: usize,
}

/// Computes the [`PlanShapeKey`] of `(model, plan)` in O(1).
pub fn plan_shape_key(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
) -> PlanShapeKey {
    let bucketed = plan.data() > 1 && plan.gradient_bucketing();
    let per_bucket = if bucketed {
        let grad_bytes_per_layer = 2 * model.params_per_layer() / plan.tensor() as u64;
        (opts.dp_bucket_bytes.as_u64() / grad_bytes_per_layer.max(1)).max(1) as usize
    } else {
        0
    };
    PlanShapeKey {
        num_layers: model.num_layers(),
        pipeline: plan.pipeline(),
        schedule: plan.schedule(),
        n_micro: plan.num_micro_batches(),
        tensor_parallel: plan.tensor() > 1,
        data_parallel: plan.data() > 1,
        per_bucket,
    }
}

/// Shared constructor of compute-operator signatures, used by both the
/// graph builder and [`plan_signatures`] so the two can never disagree.
struct SigFactory<'a> {
    model: &'a ModelConfig,
    plan: &'a ParallelConfig,
    opts: &'a GraphOptions,
}

/// One pipeline stage's communication workload, exactly as
/// [`build_op_graph`] emits it — the communication analogue of
/// [`plan_signatures`], shared with analytic consumers (the sweep's
/// admissible iteration-time bounds) so the two can never disagree.
#[derive(Clone, Debug)]
pub struct StageCommOps {
    /// The TP All-Reduce operator (compute stream), `None` when `t == 1`.
    pub tp_all_reduce: Option<CommOp>,
    /// TP All-Reduces emitted per micro-batch on this stage (forward +
    /// backward slots combined).
    pub tp_per_micro_batch: usize,
    /// The forward activation send (comm stream), `None` on the last stage.
    pub fwd_send: Option<CommOp>,
    /// The backward gradient send (comm stream), `None` on stage 0.
    pub bwd_send: Option<CommOp>,
    /// The DP gradient All-Reduce sequence (comm stream), in emission
    /// order; empty when `d == 1`.
    pub dp_all_reduces: Vec<CommOp>,
}

/// The communication operators [`build_op_graph`] emits for `stage` of
/// `(model, plan)` — shapes, scopes, and placements included.
///
/// # Panics
///
/// Panics if `stage >= plan.pipeline()` or the pipeline is deeper than the
/// model (call [`ParallelConfig::validate`] first).
pub fn stage_comm_ops(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    stage: usize,
) -> StageCommOps {
    let p = plan.pipeline();
    assert!(stage < p, "stage {stage} out of range {p}");
    let comms = CommFactory::new(model, plan, opts);
    let layers_here = layer_partition(model.num_layers(), p)[stage].len();
    let dp_all_reduces = if plan.data() > 1 {
        let sigs = SigFactory { model, plan, opts };
        if plan.gradient_bucketing() {
            DpBuckets::new(model, plan, opts, &sigs, stage, layers_here)
                .map(|(_, bytes)| comms.dp_all_reduce(bytes))
                .collect()
        } else {
            vec![comms.dp_all_reduce(unbucketed_dp_bytes(model, plan, opts, stage, layers_here))]
        }
    } else {
        Vec::new()
    };
    StageCommOps {
        tp_all_reduce: comms.tp_all_reduce,
        tp_per_micro_batch: 4 * layers_here,
        fwd_send: (stage + 1 < p).then(|| comms.pp_send(plan, stage)),
        bwd_send: (stage > 0).then(|| comms.pp_send(plan, stage - 1)),
        dp_all_reduces,
    }
}

/// Total gradient bytes of one stage's single unbucketed DP All-Reduce.
fn unbucketed_dp_bytes(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    stage: usize,
    layers_here: usize,
) -> Bytes {
    let sigs = SigFactory { model, plan, opts };
    let t = plan.tensor() as u64;
    let grad_bytes_per_layer = 2 * model.params_per_layer() / t;
    let endpoint_extra = sigs.stage_local_params(stage, layers_here)
        - layers_here as u64 * model.params_per_layer() / t;
    Bytes::from_bytes(grad_bytes_per_layer * layers_here as u64 + 2 * endpoint_extra)
}

/// The gradient-bucket sequence of one stage under DP bucketing, yielding
/// `(shallowest local layer of the bucket, payload bytes)` in emission
/// (deepest-first) order. Shared by the builder's gradient-sync emission
/// and [`stage_comm_ops`] so bucket shapes can never diverge.
struct DpBuckets {
    layer: usize,
    per_bucket: usize,
    grad_bytes_per_layer: u64,
    endpoint_grad_bytes: u64,
}

impl DpBuckets {
    fn new(
        model: &ModelConfig,
        plan: &ParallelConfig,
        opts: &GraphOptions,
        sigs: &SigFactory<'_>,
        stage: usize,
        layers_here: usize,
    ) -> Self {
        let t = plan.tensor() as u64;
        let grad_bytes_per_layer = 2 * model.params_per_layer() / t;
        let endpoint_extra = sigs.stage_local_params(stage, layers_here)
            - layers_here as u64 * model.params_per_layer() / t;
        let per_bucket =
            (opts.dp_bucket_bytes.as_u64() / grad_bytes_per_layer.max(1)).max(1) as usize;
        DpBuckets {
            layer: layers_here,
            per_bucket,
            grad_bytes_per_layer,
            endpoint_grad_bytes: 2 * endpoint_extra,
        }
    }
}

impl Iterator for DpBuckets {
    type Item = (usize, Bytes);

    fn next(&mut self) -> Option<(usize, Bytes)> {
        if self.layer == 0 {
            return None;
        }
        let lo = self.layer.saturating_sub(self.per_bucket);
        let n_layers = self.layer - lo;
        let mut bytes = Bytes::from_bytes(self.grad_bytes_per_layer * n_layers as u64);
        if lo == 0 {
            bytes += Bytes::from_bytes(self.endpoint_grad_bytes);
        }
        self.layer = lo;
        Some((lo, bytes))
    }
}

/// Shared constructor of communication operators, used by both the graph
/// builder and [`stage_comm_ops`] so the two can never disagree. The TP
/// All-Reduce (one shape per plan) is precomputed; pipeline sends and DP
/// All-Reduces are derived per boundary / payload.
struct CommFactory {
    topo: Topology,
    data_placement: GroupPlacement,
    boundary_bytes: Bytes,
    tensor: usize,
    data: usize,
    gpus_per_node: usize,
    /// The plan's TP All-Reduce operator, `None` when `t == 1`.
    tp_all_reduce: Option<CommOp>,
}

impl CommFactory {
    fn new(model: &ModelConfig, plan: &ParallelConfig, opts: &GraphOptions) -> Self {
        let topo = opts.shape_topology();
        let groups = ProcessGroups::new(plan, &topo);
        let boundary_bytes = model.boundary_activation_bytes(plan.micro_batch());
        let t = plan.tensor();
        let tp_all_reduce = (t > 1).then_some(CommOp {
            kind: CommKind::TpAllReduce,
            bytes: boundary_bytes,
            ranks: t,
            scope: CommScope::IntraNode,
            placement: groups.tensor,
            overlappable: false,
            concurrent_groups: 1,
        });
        CommFactory {
            topo,
            data_placement: groups.data,
            boundary_bytes,
            tensor: t,
            data: plan.data(),
            gpus_per_node: opts.gpus_per_node,
            tp_all_reduce,
        }
    }

    /// The pipeline send crossing `boundary` (between stages `boundary`
    /// and `boundary + 1`).
    fn pp_send(&self, plan: &ParallelConfig, boundary: usize) -> CommOp {
        let tier = ProcessGroups::pipeline_boundary_tier(plan, &self.topo, boundary);
        CommOp {
            kind: CommKind::PpSendRecv,
            bytes: self.boundary_bytes,
            ranks: 2,
            scope: if tier > 0 { CommScope::InterNode } else { CommScope::IntraNode },
            placement: GroupPlacement::pair(tier),
            overlappable: false,
            concurrent_groups: 1,
        }
    }

    fn dp_all_reduce(&self, bytes: Bytes) -> CommOp {
        let inter_node = self.tensor * self.data > self.gpus_per_node;
        CommOp {
            kind: CommKind::DpAllReduce,
            bytes,
            ranks: self.data,
            scope: if inter_node { CommScope::InterNode } else { CommScope::IntraNode },
            placement: self.data_placement,
            overlappable: true,
            concurrent_groups: if inter_node {
                self.gpus_per_node / self.tensor.min(self.gpus_per_node)
            } else {
                1
            },
        }
    }
}

impl SigFactory<'_> {
    fn layer(&self, kind: CompKind) -> OpSignature {
        let recompute = self.opts.recompute && matches!(kind, CompKind::MhaBwd | CompKind::FfnBwd);
        OpSignature {
            kind,
            hidden: self.model.hidden_size(),
            heads: self.model.num_heads(),
            seq: self.model.seq_len(),
            micro_batch: self.plan.micro_batch(),
            tensor: self.plan.tensor(),
            ffn_expansion: self.model.ffn_expansion(),
            vocab: 0,
            params: 0,
            recompute,
        }
    }

    fn vocab(&self, kind: CompKind) -> OpSignature {
        OpSignature { vocab: self.model.vocab_size(), ..self.layer(kind) }
    }

    fn weight_update(&self, params: u64) -> OpSignature {
        OpSignature { params, ..self.layer(CompKind::WeightUpdate) }
    }

    /// Parameters held by one GPU of `stage` (layer share + endpoint
    /// extras), matching the weight-update and DP-gradient volume.
    fn stage_local_params(&self, stage: usize, num_layers_here: usize) -> u64 {
        stage_params_with_layers(self.model, self.plan, stage, num_layers_here)
    }
}

/// Parameters held by one GPU of `stage` under `plan` — exactly the
/// weight-update (and DP-gradient) volume [`build_op_graph`] prices.
/// Public so analytic consumers (the sweep's iteration-time bounds) can
/// never disagree with the builder's accounting.
///
/// # Panics
///
/// Panics if `stage >= plan.pipeline()` or the pipeline is deeper than
/// the model's layer count.
pub fn stage_weight_params(model: &ModelConfig, plan: &ParallelConfig, stage: usize) -> u64 {
    let layers_here = layer_partition(model.num_layers(), plan.pipeline())[stage].len();
    stage_params_with_layers(model, plan, stage, layers_here)
}

/// [`stage_weight_params`] with the stage's layer count precomputed (the
/// builder walks the partition once and passes lengths in).
fn stage_params_with_layers(
    model: &ModelConfig,
    plan: &ParallelConfig,
    stage: usize,
    num_layers_here: usize,
) -> u64 {
    let t = plan.tensor() as u64;
    let mut params = num_layers_here as u64 * model.params_per_layer() / t;
    if stage == 0 {
        params += model.embedding_params() / t;
    }
    if stage == plan.pipeline() - 1 {
        params += 2 * model.hidden_size() as u64;
    }
    params
}

/// Finds the maximal repeated slot block starting at `i`: returns
/// `(w, k)` such that slots `[i, i + k·w)` are `k` repetitions of a
/// `w`-slot pattern, compared by pass alone (two same-pass slots emit
/// identical structure — the micro-batch index only affects record
/// bookkeeping), capped so the block never reaches `last_bwd` (the final
/// backward slot emits differently). `k < 2` means no usable repetition.
fn repeat_block(program: &[StageSlot], i: usize, last_bwd: Option<usize>) -> (usize, usize) {
    for w in [1usize, 2] {
        if i + 2 * w > program.len() {
            break;
        }
        let mut k = 1;
        while i + (k + 1) * w <= program.len()
            && (0..w).all(|j| program[i + k * w + j].pass == program[i + j].pass)
        {
            k += 1;
        }
        if let Some(x) = last_bwd {
            if x >= i {
                k = k.min((x - i) / w);
            }
        }
        if k >= 2 {
            return (w, k);
        }
    }
    (1, 1)
}

struct Builder<'a, S: GraphSink> {
    model: &'a ModelConfig,
    plan: &'a ParallelConfig,
    opts: &'a GraphOptions,
    sigs: SigFactory<'a>,
    sink: &'a mut S,
    /// Shared communication-operator constructor (placement geometry
    /// computed once, not per node).
    comms: CommFactory,
    /// Precomputed pipeline sends, indexed by boundary (`p - 1` entries).
    pp_sends: Vec<CommOp>,
    /// Precomputed backward layer signatures for the final backward
    /// slot's per-layer emission (all other layer loops go through the
    /// chain patterns below).
    sig_mha_bwd: OpSignature,
    sig_ffn_bwd: OpSignature,
    /// The per-layer forward/backward emission patterns
    /// (`[Mha, TpAR?, Ffn, TpAR?]` and `[FfnBwd, TpAR?, MhaBwd, TpAR?]`),
    /// precomputed so slot bodies emit whole layer loops as one
    /// [`GraphSink::push_chain`] block.
    fwd_chain: Vec<ChainOp>,
    bwd_chain: Vec<ChainOp>,
    /// Last node per (device, stream) for program-order chaining.
    last_compute: Vec<Option<u32>>,
    last_comm: Vec<Option<u32>>,
    /// Mirror of the sink's node counter (sinks hand out dense indices
    /// from 0), letting the builder do id arithmetic for replicated
    /// blocks without asking the sink.
    next_node: u32,
    /// Latency-slot ids (see [`visit_plan_slots`]): the TP All-Reduce
    /// slot (meaningful only when `t > 1`), the first pipeline-send slot
    /// (boundary 0), and the next DP All-Reduce slot to hand out (DP
    /// slots are consumed in emission order, which `build`'s
    /// stage-major walk makes identical to enumeration order).
    slot_tp: u32,
    slot_send_base: u32,
    next_dp_slot: u32,
}

/// Per-stage bookkeeping for cross-stage edges.
#[derive(Clone, Default)]
struct StageRecord {
    /// First node of each micro-batch's forward slot.
    fwd_first: Vec<Option<u32>>,
    /// The forward activation send of each micro-batch (stages < p-1).
    fwd_send: Vec<Option<u32>>,
    /// First node of each micro-batch's backward slot.
    bwd_first: Vec<Option<u32>>,
    /// The backward gradient send of each micro-batch (stages > 0).
    bwd_send: Vec<Option<u32>>,
    /// Node after which each local layer's gradient is final (recorded
    /// while walking the final backward slot), indexed by position within
    /// the stage.
    grad_ready: Vec<Option<u32>>,
    /// Embedding-backward node (stage 0 only).
    embedding_bwd: Option<u32>,
    /// DP All-Reduce nodes of this stage.
    dp_all_reduces: Vec<u32>,
}

impl<'a, S: GraphSink> Builder<'a, S> {
    fn new(
        model: &'a ModelConfig,
        plan: &'a ParallelConfig,
        opts: &'a GraphOptions,
        sink: &'a mut S,
    ) -> Self {
        let p = plan.pipeline();
        let comms = CommFactory::new(model, plan, opts);
        let pp_sends = (0..p.saturating_sub(1)).map(|b| comms.pp_send(plan, b)).collect();
        let sigs = SigFactory { model, plan, opts };
        let slot_tp = FIXED_COMP_SLOTS + p as u32;
        let slot_send_base = slot_tp + (plan.tensor() > 1) as u32;
        let next_dp_slot = slot_send_base + p.saturating_sub(1) as u32;
        let layer_chain = |a: OpSignature, b: OpSignature| {
            let mut chain = Vec::with_capacity(4);
            for sig in [a, b] {
                chain.push(ChainOp {
                    op: Op::Compute(ComputeOp { sig }),
                    slot: fixed_comp_slot(sig.kind),
                });
                if let Some(tp) = comms.tp_all_reduce {
                    chain.push(ChainOp { op: Op::Comm(tp), slot: slot_tp });
                }
            }
            chain
        };
        let sig_mha_fwd = sigs.layer(CompKind::MhaFwd);
        let sig_ffn_fwd = sigs.layer(CompKind::FfnFwd);
        let sig_mha_bwd = sigs.layer(CompKind::MhaBwd);
        let sig_ffn_bwd = sigs.layer(CompKind::FfnBwd);
        Builder {
            model,
            plan,
            opts,
            sig_mha_bwd,
            sig_ffn_bwd,
            fwd_chain: layer_chain(sig_mha_fwd, sig_ffn_fwd),
            bwd_chain: layer_chain(sig_ffn_bwd, sig_mha_bwd),
            sigs,
            sink,
            comms,
            pp_sends,
            last_compute: vec![None; p],
            last_comm: vec![None; p],
            next_node: 0,
            slot_tp,
            slot_send_base,
            next_dp_slot,
        }
    }

    /// Appends a node with its latency slot, chaining it after the
    /// previous node on the same (device, stream) to enforce program
    /// order.
    fn emit(&mut self, device: usize, stream: StreamKind, op: Op, latency_slot: u32) -> u32 {
        let idx =
            self.sink.push_slotted(OpNode { device: device as u32, stream, op }, latency_slot);
        debug_assert_eq!(idx, self.next_node, "sink indices must be dense");
        self.next_node = idx + 1;
        let slot = match stream {
            StreamKind::Compute => &mut self.last_compute[device],
            StreamKind::Comm => &mut self.last_comm[device],
        };
        if let Some(prev) = slot.replace(idx) {
            self.sink.add_edge(prev, idx);
        }
        idx
    }

    fn vocab_sig(&self, kind: CompKind) -> OpSignature {
        self.sigs.vocab(kind)
    }

    fn weight_update_sig(&self, params: u64) -> OpSignature {
        self.sigs.weight_update(params)
    }

    /// Emits a fixed layer/vocab compute node (slot from the kind).
    fn compute(&mut self, device: usize, sig: OpSignature) -> u32 {
        let slot = fixed_comp_slot(sig.kind);
        self.emit(device, StreamKind::Compute, Op::Compute(ComputeOp { sig }), slot)
    }

    /// Emits one of the precomputed per-layer patterns `repeat` times as a
    /// single [`GraphSink::push_chain`] block, chained after the device's
    /// previous compute-stream node. Returns the first node; `repeat` must
    /// be at least 1.
    fn compute_chain(&mut self, device: usize, backward: bool, repeat: usize) -> u32 {
        let pattern = if backward { &self.bwd_chain } else { &self.fwd_chain };
        let prev = self.last_compute[device];
        let first = self.sink.push_chain(device as u32, prev, pattern, repeat as u32);
        debug_assert_eq!(first, self.next_node, "sink indices must be dense");
        let last = first + (pattern.len() * repeat) as u32 - 1;
        self.next_node = last + 1;
        self.last_compute[device] = Some(last);
        first
    }

    /// TP All-Reduce node on the compute stream (sequential dependency with
    /// the surrounding blocks, Fig. 6). No-op when `t == 1`.
    fn tp_all_reduce(&mut self, device: usize) -> Option<u32> {
        let op = self.comms.tp_all_reduce?;
        let slot = self.slot_tp;
        Some(self.emit(device, StreamKind::Compute, Op::Comm(op), slot))
    }

    fn pp_send(&mut self, device: usize, boundary: usize) -> u32 {
        let op = self.pp_sends[boundary];
        let slot = self.slot_send_base + boundary as u32;
        self.emit(device, StreamKind::Comm, Op::Comm(op), slot)
    }

    /// DP gradient All-Reduce over `bytes` of this rank's gradients.
    fn dp_all_reduce(&mut self, device: usize, bytes: Bytes) -> u32 {
        let op = self.comms.dp_all_reduce(bytes);
        let slot = self.next_dp_slot;
        self.next_dp_slot += 1;
        self.emit(device, StreamKind::Comm, Op::Comm(op), slot)
    }

    fn stage_local_params(&self, stage: usize, num_layers_here: usize) -> u64 {
        self.sigs.stage_local_params(stage, num_layers_here)
    }

    fn build(mut self) {
        let p = self.plan.pipeline();
        let n_micro = self.plan.num_micro_batches();
        let partition = layer_partition(self.model.num_layers(), p);
        let mut records: Vec<StageRecord> = (0..p)
            .map(|s| StageRecord {
                fwd_first: vec![None; n_micro],
                fwd_send: vec![None; n_micro],
                bwd_first: vec![None; n_micro],
                bwd_send: vec![None; n_micro],
                grad_ready: vec![None; partition[s].len()],
                ..StageRecord::default()
            })
            .collect();

        // Pass 1: per-stage programs with intra-stage edges. Pipeline
        // schedules are periodic — most of a stage's program is a short
        // slot block repeated per micro-batch (1F1B's steady-state
        // forward/backward pair, GPipe's forward and backward trains) —
        // and two slots of the same pass emit identical structure: the
        // micro-batch index only lands in the records. Each maximal
        // repetition is emitted once and offered to the sink as a block
        // replication; sinks that decline receive the remaining copies
        // as ordinary per-slot emission.
        for stage in 0..p {
            let layers_here = partition[stage].len();
            let program = self.plan.schedule().stage_program(stage, p, n_micro);
            // The final backward slot emits differently (per-layer
            // gradient anchors and cuts), so no block may cover it.
            let last_bwd = program.iter().rposition(|s| s.pass == Pass::Backward);
            let mut bwd_seen = 0usize;
            let mut i = 0usize;
            while i < program.len() {
                let (w, k) = repeat_block(&program, i, last_bwd);
                if k < 2 {
                    self.emit_slot(
                        stage,
                        &program[i],
                        layers_here,
                        p,
                        &mut bwd_seen,
                        &mut records[stage],
                    );
                    i += 1;
                    continue;
                }
                let block_first = self.next_node;
                let mut outputs = [(0u32, None); 2];
                for (j, out) in outputs.iter_mut().enumerate().take(w) {
                    *out = self.emit_slot(
                        stage,
                        &program[i + j],
                        layers_here,
                        p,
                        &mut bwd_seen,
                        &mut records[stage],
                    );
                }
                let stride = self.next_node - block_first;
                if self.sink.replicate_block(block_first, (k - 1) as u32) {
                    self.skip_replicated_slots(
                        stage,
                        &program[i..i + k * w],
                        w,
                        block_first,
                        stride,
                        &outputs[..w],
                        &mut bwd_seen,
                        &mut records[stage],
                    );
                } else {
                    for j in w..k * w {
                        self.emit_slot(
                            stage,
                            &program[i + j],
                            layers_here,
                            p,
                            &mut bwd_seen,
                            &mut records[stage],
                        );
                    }
                }
                i += k * w;
            }
            self.emit_gradient_sync_and_update(stage, layers_here, &mut records[stage]);
        }

        // Pass 2: cross-stage pipeline edges (same micro-batch precedence,
        // Fig. 7 / §III-B). Within replicated schedule regions both
        // endpoints advance by constant node strides across micro-batches,
        // so the per-pair loops chunk into maximal arithmetic edge trains.
        for stage in 1..p {
            self.cross_stage_trains(&records[stage - 1].fwd_send, &records[stage].fwd_first);
        }
        for stage in 0..p.saturating_sub(1) {
            self.cross_stage_trains(&records[stage + 1].bwd_send, &records[stage].bwd_first);
        }
    }

    /// Emits the per-micro-batch `send → first` edges of one stage
    /// boundary, grouping maximal constant-stride spans into
    /// [`GraphSink::add_edge_train`] calls.
    fn cross_stage_trains(&mut self, sends: &[Option<u32>], firsts: &[Option<u32>]) {
        let at = |v: &[Option<u32>], i: usize| v[i].expect("cross-stage endpoint exists");
        let mut i = 0usize;
        while i < sends.len() {
            let (from, to) = (at(sends, i), at(firsts, i));
            let mut len = 1u32;
            if i + 1 < sends.len() {
                let (f1, t1) = (at(sends, i + 1), at(firsts, i + 1));
                if f1 > from && t1 > to {
                    let (df, dt) = (f1 - from, t1 - to);
                    len = 2;
                    while i + (len as usize) < sends.len()
                        && sends[i + len as usize] == Some(from + df * len)
                        && firsts[i + len as usize] == Some(to + dt * len)
                    {
                        len += 1;
                    }
                    self.sink.add_edge_train(from, df, to, dt, len);
                }
            }
            if len == 1 {
                self.sink.add_edge(from, to);
            }
            i += len as usize;
        }
    }

    /// Emits one schedule slot (with its aggregation cut) and records its
    /// endpoints; returns `(first node, optional send)`.
    fn emit_slot(
        &mut self,
        stage: usize,
        slot: &StageSlot,
        layers_here: usize,
        p: usize,
        bwd_seen: &mut usize,
        record: &mut StageRecord,
    ) -> (u32, Option<u32>) {
        // Every slot's first node can receive a cross-stage edge.
        self.sink.cut(stage as u32);
        match slot.pass {
            Pass::Forward => {
                let out = self.emit_forward_slot(stage, layers_here, p);
                record.fwd_first[slot.micro_batch] = Some(out.0);
                record.fwd_send[slot.micro_batch] = out.1;
                out
            }
            Pass::Backward => {
                *bwd_seen += 1;
                let is_final_bwd = *bwd_seen == self.plan.num_micro_batches();
                let out = self.emit_backward_slot(stage, layers_here, p, is_final_bwd, record);
                record.bwd_first[slot.micro_batch] = Some(out.0);
                record.bwd_send[slot.micro_batch] = out.1;
                out
            }
        }
    }

    /// Accounts for the replicated copies of a block the sink accepted
    /// without emitting them: advances the id mirror and the chain
    /// cursors, records each copy's endpoints (the block outputs shifted
    /// by the copy's node offset), and emits the program-order chain
    /// edges into each copy from the previous copy's stream tails —
    /// the only block edges whose source lies outside the block.
    #[allow(clippy::too_many_arguments)]
    fn skip_replicated_slots(
        &mut self,
        stage: usize,
        slots: &[StageSlot],
        w: usize,
        block_first: u32,
        stride: u32,
        outputs: &[(u32, Option<u32>)],
        bwd_seen: &mut usize,
        record: &mut StageRecord,
    ) {
        let copies = (slots.len() / w - 1) as u32;
        let first_comm = outputs.iter().find_map(|&(_, send)| send);
        let last_compute0 = self.last_compute[stage].expect("block emits compute nodes");
        let last_comm0 =
            first_comm.map(|_| self.last_comm[stage].expect("block emitted its sends"));
        self.next_node += stride * copies;
        // Program-order chain links into each copy, from the previous
        // copy's stream tails — both endpoints advance by the block
        // stride, so each stream is one edge train.
        self.sink.add_edge_train(last_compute0, stride, block_first + stride, stride, copies);
        if let (Some(fc), Some(lc)) = (first_comm, last_comm0) {
            self.sink.add_edge_train(lc, stride, fc + stride, stride, copies);
        }
        for q in 1..=copies {
            let off = stride * q;
            for (j, &(first, send)) in outputs.iter().enumerate() {
                let slot = &slots[q as usize * w + j];
                let (first, send) = (first + off, send.map(|s| s + off));
                match slot.pass {
                    Pass::Forward => {
                        record.fwd_first[slot.micro_batch] = Some(first);
                        record.fwd_send[slot.micro_batch] = send;
                    }
                    Pass::Backward => {
                        *bwd_seen += 1;
                        record.bwd_first[slot.micro_batch] = Some(first);
                        record.bwd_send[slot.micro_batch] = send;
                    }
                }
            }
        }
        let total = stride * copies;
        self.last_compute[stage] = Some(last_compute0 + total);
        if let Some(lc) = last_comm0 {
            self.last_comm[stage] = Some(lc + total);
        }
    }

    /// Emits one forward slot; returns (first node, optional activation
    /// send).
    fn emit_forward_slot(
        &mut self,
        stage: usize,
        layers_here: usize,
        p: usize,
    ) -> (u32, Option<u32>) {
        let mut first = None;
        let track = |idx: u32, first: &mut Option<u32>| {
            if first.is_none() {
                *first = Some(idx);
            }
        };
        if stage == 0 {
            let idx = self.compute(stage, self.vocab_sig(CompKind::EmbeddingFwd));
            track(idx, &mut first);
        }
        if layers_here > 0 {
            let idx = self.compute_chain(stage, false, layers_here);
            track(idx, &mut first);
        }
        let send = if stage == p - 1 {
            self.compute(stage, self.vocab_sig(CompKind::LmHeadFwd));
            None
        } else {
            // The send waits for the last compute node via an explicit edge
            // (it lives on the comm stream).
            let last_compute = self.last_compute[stage].expect("forward emitted compute");
            let send = self.pp_send(stage, stage);
            self.sink.add_edge(last_compute, send);
            Some(send)
        };
        (first.expect("forward slot emits at least one node"), send)
    }

    /// Emits one backward slot; returns (first node, optional gradient
    /// send). When `is_final_bwd`, records per-layer gradient-ready nodes.
    fn emit_backward_slot(
        &mut self,
        stage: usize,
        layers_here: usize,
        p: usize,
        is_final_bwd: bool,
        record: &mut StageRecord,
    ) -> (u32, Option<u32>) {
        let mut first = None;
        let track = |idx: u32, first: &mut Option<u32>| {
            if first.is_none() {
                *first = Some(idx);
            }
        };
        if stage == p - 1 {
            let idx = self.compute(stage, self.vocab_sig(CompKind::LmHeadBwd));
            track(idx, &mut first);
        }
        // Backward visits layers deepest-first. Only the final backward
        // slot needs per-layer emission (its gradient anchors receive
        // cuts and late DP edges); every other slot is one pure chain.
        if is_final_bwd {
            for local_layer in (0..layers_here).rev() {
                let idx = self.compute(stage, self.sig_ffn_bwd);
                track(idx, &mut first);
                self.tp_all_reduce(stage);
                let mha = self.compute(stage, self.sig_mha_bwd);
                let last = self.tp_all_reduce(stage).unwrap_or(mha);
                // The per-layer gradient anchor sources a late edge to its
                // DP bucket: close the aggregation run at the anchor.
                record.grad_ready[local_layer] = Some(last);
                self.sink.cut(stage as u32);
            }
        } else if layers_here > 0 {
            let idx = self.compute_chain(stage, true, layers_here);
            track(idx, &mut first);
        }
        let send = if stage == 0 {
            let idx = self.compute(stage, self.vocab_sig(CompKind::EmbeddingBwd));
            track(idx, &mut first);
            if is_final_bwd {
                record.embedding_bwd = Some(idx);
                self.sink.cut(stage as u32);
            }
            None
        } else {
            let last_compute = self.last_compute[stage].expect("backward emitted compute");
            let send = self.pp_send(stage, stage - 1);
            self.sink.add_edge(last_compute, send);
            Some(send)
        };
        (first.expect("backward slot emits at least one node"), send)
    }

    /// Emits the stage's DP gradient All-Reduces (bucketed or single,
    /// Fig. 5) and its weight-update node.
    fn emit_gradient_sync_and_update(
        &mut self,
        stage: usize,
        layers_here: usize,
        record: &mut StageRecord,
    ) {
        let d = self.plan.data();
        if d > 1 {
            if self.plan.gradient_bucketing() {
                // Buckets group layers in gradient-readiness order
                // (deepest local layer first).
                let buckets = DpBuckets::new(
                    self.model,
                    self.plan,
                    self.opts,
                    &self.sigs,
                    stage,
                    layers_here,
                );
                for (lo, bytes) in buckets {
                    let ar = self.dp_all_reduce(stage, bytes);
                    // Ready when the shallowest layer of the bucket is done.
                    let ready = record.grad_ready[lo].expect("final backward recorded");
                    self.sink.add_edge(ready, ar);
                    if lo == 0 {
                        if let Some(emb) = record.embedding_bwd {
                            self.sink.add_edge(emb, ar);
                        }
                    }
                    record.dp_all_reduces.push(ar);
                }
            } else {
                // Unbucketed: a single All-Reduce strictly after the entire
                // backward pass (Fig. 5(b)).
                let bytes =
                    unbucketed_dp_bytes(self.model, self.plan, self.opts, stage, layers_here);
                let last_compute = self.last_compute[stage].expect("stage has compute nodes");
                let ar = self.dp_all_reduce(stage, bytes);
                self.sink.add_edge(last_compute, ar);
                record.dp_all_reduces.push(ar);
            }
        }

        // The weight update receives late edges from the All-Reduces: it
        // must head its own aggregation run.
        self.sink.cut(stage as u32);
        let params = self.stage_local_params(stage, layers_here);
        let sig = self.weight_update_sig(params);
        let wu = self.emit(
            stage,
            StreamKind::Compute,
            Op::Compute(ComputeOp { sig }),
            FIXED_COMP_SLOTS + stage as u32,
        );
        for &ar in &record.dp_all_reduces {
            self.sink.add_edge(ar, wu);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_model::presets;
    use vtrain_parallel::PipelineSchedule as Sched;

    fn plan(t: usize, d: usize, p: usize, m: usize, b: usize, sched: Sched) -> ParallelConfig {
        ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(m)
            .global_batch(b)
            .schedule(sched)
            .build()
            .unwrap()
    }

    fn count_kind(g: &OpGraph, kind: CompKind) -> usize {
        g.nodes().iter().filter(|n| n.op.signature().is_some_and(|s| s.kind == kind)).count()
    }

    fn count_comm(g: &OpGraph, kind: CommKind) -> usize {
        g.nodes().iter().filter(|n| n.op.comm().is_some_and(|c| c.kind == kind)).count()
    }

    #[test]
    fn single_gpu_graph_shape() {
        let model = presets::megatron("1.7B"); // 24 layers
        let p = plan(1, 1, 1, 2, 8, Sched::OneFOneB); // 4 micro-batches
        let g = build_op_graph(&model, &p, &GraphOptions::default());
        assert!(g.is_acyclic());
        // 4 micro-batches × 24 layers of MHA fwd.
        assert_eq!(count_kind(&g, CompKind::MhaFwd), 96);
        assert_eq!(count_kind(&g, CompKind::MhaBwd), 96);
        assert_eq!(count_kind(&g, CompKind::EmbeddingFwd), 4);
        assert_eq!(count_kind(&g, CompKind::LmHeadFwd), 4);
        assert_eq!(count_kind(&g, CompKind::WeightUpdate), 1);
        // No parallelism ⇒ no communication at all.
        assert_eq!(count_comm(&g, CommKind::TpAllReduce), 0);
        assert_eq!(count_comm(&g, CommKind::DpAllReduce), 0);
        assert_eq!(count_comm(&g, CommKind::PpSendRecv), 0);
    }

    #[test]
    fn tensor_parallel_inserts_two_all_reduces_per_layer_per_pass() {
        let model = presets::megatron("1.7B");
        let p = plan(2, 1, 1, 2, 4, Sched::OneFOneB); // 2 micro-batches
        let g = build_op_graph(&model, &p, &GraphOptions::default());
        // 2 mb × 24 layers × 2 passes × 2 All-Reduces (Fig. 6).
        assert_eq!(count_comm(&g, CommKind::TpAllReduce), 2 * 24 * 2 * 2);
    }

    #[test]
    fn pipeline_inserts_send_recv_at_boundaries() {
        let model = presets::megatron("1.7B");
        let p = plan(1, 1, 3, 1, 6, Sched::OneFOneB); // 6 micro-batches, 3 stages
        let g = build_op_graph(&model, &p, &GraphOptions::default());
        // fwd: stages 0,1 send (2 boundaries × 6 mb); bwd: stages 2,1 send.
        assert_eq!(count_comm(&g, CommKind::PpSendRecv), 2 * 6 + 2 * 6);
        assert!(g.is_acyclic());
    }

    #[test]
    fn data_parallel_bucketing_bounds_bucket_count() {
        let model = presets::megatron("1.7B");
        let with = plan(1, 4, 1, 1, 8, Sched::OneFOneB);
        let g = build_op_graph(&model, &with, &GraphOptions::default());
        let buckets = count_comm(&g, CommKind::DpAllReduce);
        assert!((1..=24).contains(&buckets), "buckets = {buckets}");
        // Disabling bucketing collapses to exactly one All-Reduce (Fig. 5b).
        let without = ParallelConfig::builder()
            .data(4)
            .global_batch(8)
            .gradient_bucketing(false)
            .build()
            .unwrap();
        let g2 = build_op_graph(&model, &without, &GraphOptions::default());
        assert_eq!(count_comm(&g2, CommKind::DpAllReduce), 1);
    }

    #[test]
    fn necessary_operators_independent_of_scale() {
        let small = presets::megatron("1.7B");
        let big = {
            // Same shape hyperparameters, more layers.
            vtrain_model::ModelConfig::builder()
                .name("deep")
                .hidden_size(small.hidden_size())
                .num_layers(96)
                .num_heads(small.num_heads())
                .seq_len(small.seq_len())
                .vocab_size(small.vocab_size())
                .build()
                .unwrap()
        };
        let p_small = plan(2, 2, 2, 1, 8, Sched::OneFOneB);
        let p_big = plan(2, 2, 2, 1, 32, Sched::OneFOneB);
        let ops_small =
            build_op_graph(&small, &p_small, &GraphOptions::default()).necessary_operators();
        let ops_big = build_op_graph(&big, &p_big, &GraphOptions::default()).necessary_operators();
        // Layer ops share signatures; only WeightUpdate params differ.
        let non_wu = |s: &OpSignature| s.kind != CompKind::WeightUpdate;
        let a: std::collections::HashSet<_> = ops_small.iter().copied().filter(non_wu).collect();
        let b: std::collections::HashSet<_> = ops_big.iter().copied().filter(non_wu).collect();
        assert_eq!(a, b, "layer signatures must be scale-invariant");
        assert!(ops_small.len() <= 12);
    }

    #[test]
    fn gpipe_and_1f1b_have_identical_node_multisets() {
        let model = presets::megatron("1.7B");
        let a =
            build_op_graph(&model, &plan(2, 2, 2, 1, 16, Sched::GPipe), &GraphOptions::default());
        let b = build_op_graph(
            &model,
            &plan(2, 2, 2, 1, 16, Sched::OneFOneB),
            &GraphOptions::default(),
        );
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert!(a.is_acyclic() && b.is_acyclic());
    }

    #[test]
    fn dp_scope_follows_rank_layout() {
        let model = presets::megatron("1.7B");
        // t·d = 4 ≤ 8 ⇒ DP stays intra-node.
        let intra =
            build_op_graph(&model, &plan(2, 2, 1, 1, 4, Sched::OneFOneB), &GraphOptions::default());
        let scope = intra
            .nodes()
            .iter()
            .find_map(|n| n.op.comm().filter(|c| c.kind == CommKind::DpAllReduce))
            .unwrap()
            .scope;
        assert_eq!(scope, CommScope::IntraNode);
        // t·d = 32 > 8 ⇒ inter-node, with 8/8 = 1… use t = 2, d = 16:
        // 4 concurrent DP groups per node.
        let inter = build_op_graph(
            &model,
            &plan(2, 16, 1, 1, 16, Sched::OneFOneB),
            &GraphOptions::default(),
        );
        let op = inter
            .nodes()
            .iter()
            .find_map(|n| n.op.comm().filter(|c| c.kind == CommKind::DpAllReduce))
            .unwrap();
        assert_eq!(op.scope, CommScope::InterNode);
        assert_eq!(op.concurrent_groups, 4);
    }

    #[test]
    fn comm_placements_follow_the_rack_shape() {
        let model = presets::megatron("1.7B");
        let cfg = plan(8, 8, 1, 1, 8, Sched::OneFOneB);
        // 8 GPUs per node, 4 nodes per rack: each DP replica owns a node,
        // the 8 replicas span 2 racks.
        let opts = GraphOptions { nodes_per_rack: Some(4), ..GraphOptions::default() };
        let g = build_op_graph(&model, &cfg, &opts);
        let dp = g
            .nodes()
            .iter()
            .find_map(|n| n.op.comm().filter(|c| c.kind == CommKind::DpAllReduce))
            .unwrap();
        assert_eq!(
            dp.placement,
            vtrain_net::GroupPlacement { ranks_per_node: 1, nodes_per_rack: 4, racks: 2 }
        );
        let tp = g
            .nodes()
            .iter()
            .find_map(|n| n.op.comm().filter(|c| c.kind == CommKind::TpAllReduce))
            .unwrap();
        assert_eq!(tp.placement, vtrain_net::GroupPlacement::intra_node(8));
        // Without a rack tier the same plan spans one logical rack.
        let flat = build_op_graph(&model, &cfg, &GraphOptions::default());
        let dp_flat = flat
            .nodes()
            .iter()
            .find_map(|n| n.op.comm().filter(|c| c.kind == CommKind::DpAllReduce))
            .unwrap();
        assert_eq!(dp_flat.placement.racks, 1);
        assert_eq!(dp_flat.placement.nodes_per_rack, 8);
    }

    #[test]
    fn pp_placement_tier_matches_scope() {
        let model = presets::megatron("1.7B");
        let cfg = plan(2, 2, 3, 1, 6, Sched::OneFOneB); // 4-rank stages
        let g = build_op_graph(&model, &cfg, &GraphOptions::default());
        for n in g.nodes() {
            if let Some(c) = n.op.comm().filter(|c| c.kind == CommKind::PpSendRecv) {
                match c.scope {
                    CommScope::IntraNode => assert_eq!(c.placement.top_tier(), 0),
                    CommScope::InterNode => assert!(c.placement.top_tier() >= 1),
                }
            }
        }
    }

    #[test]
    fn weight_update_params_cover_model() {
        let model = presets::megatron("1.7B");
        let cfg = plan(2, 2, 4, 1, 8, Sched::OneFOneB);
        let g = build_op_graph(&model, &cfg, &GraphOptions::default());
        let total: u64 = g
            .nodes()
            .iter()
            .filter_map(|n| n.op.signature())
            .filter(|s| s.kind == CompKind::WeightUpdate)
            .map(|s| s.params)
            .sum();
        // Sum over stages × t ranks ≈ full model.
        let covered = total * cfg.tensor() as u64;
        let full = model.num_parameters();
        let rel = (covered as f64 - full as f64).abs() / full as f64;
        assert!(rel < 0.01, "weight updates cover {covered} of {full}");
    }

    #[test]
    fn plan_signatures_match_built_graph_exactly() {
        // The cheap precomputation must agree with the graph's necessary
        // operators on every grid corner: schedules, batch splits, uneven
        // layer partitions, recompute on/off.
        let models = [presets::megatron("1.7B"), presets::megatron("18.4B")];
        for model in &models {
            for (t, d, p, m, b) in [
                (1, 1, 1, 1, 4),
                (2, 2, 2, 2, 8),
                (4, 1, 3, 1, 6), // uneven partition candidate (24 % 3 == 0 but shapes differ)
                (2, 4, 5, 1, 8), // 24 and 40 layers both leave a remainder stage for p = 5
                (8, 2, 4, 2, 16),
            ] {
                if model.num_layers() < p {
                    continue;
                }
                for sched in [Sched::OneFOneB, Sched::GPipe] {
                    for recompute in [true, false] {
                        let cfg = plan(t, d, p, m, b, sched);
                        let opts = GraphOptions { recompute, ..GraphOptions::default() };
                        let built = build_op_graph(model, &cfg, &opts).necessary_operators();
                        let cheap = plan_signatures(model, &cfg, &opts);
                        assert_eq!(
                            cheap,
                            built,
                            "signature sets diverge for t={t} d={d} p={p} m={m} {sched:?} \
                             recompute={recompute} on {}",
                            model.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn node_slots_resolve_to_the_canonical_enumeration() {
        // Every node's latency slot must price exactly the operator the
        // builder emitted there, across grid corners covering all slot
        // families (fixed kinds, per-stage WU, TP, sends, DP buckets).
        #[derive(Default)]
        struct SlotRecorder {
            ops: Vec<(Op, u32)>,
        }
        impl crate::GraphSink for SlotRecorder {
            fn push(&mut self, _node: OpNode) -> u32 {
                panic!("builder must route every node through push_slotted");
            }
            fn push_slotted(&mut self, node: OpNode, slot: u32) -> u32 {
                let idx = self.ops.len() as u32;
                self.ops.push((node.op, slot));
                idx
            }
            fn add_edge(&mut self, _from: u32, _to: u32) {}
        }

        let models = [presets::megatron("1.7B"), presets::megatron("18.4B")];
        for model in &models {
            for (t, d, p, m, b) in [
                (1, 1, 1, 1, 4),
                (2, 2, 2, 2, 8),
                (4, 1, 3, 1, 6),
                (2, 4, 5, 1, 8),
                (8, 2, 4, 2, 16),
                (1, 8, 1, 1, 16),
                // Deep micro-batch counts: long replicated trains in both
                // schedules (GPipe F/B-trains, 1F1B steady state).
                (1, 1, 4, 1, 24),
                (2, 1, 3, 1, 32),
            ] {
                if model.num_layers() < p {
                    continue;
                }
                for sched in [Sched::OneFOneB, Sched::GPipe] {
                    for bucketing in [true, false] {
                        let cfg = ParallelConfig::builder()
                            .tensor(t)
                            .data(d)
                            .pipeline(p)
                            .micro_batch(m)
                            .global_batch(b)
                            .schedule(sched)
                            .gradient_bucketing(bucketing)
                            .build()
                            .unwrap();
                        let opts = GraphOptions::default();
                        let mut slots = Vec::new();
                        visit_plan_slots(model, &cfg, &opts, |op| slots.push(op));
                        let mut rec = SlotRecorder::default();
                        build_op_graph_into(model, &cfg, &opts, &mut rec);
                        let ctx = format!(
                            "t={t} d={d} p={p} m={m} {sched:?} bucketing={bucketing} on {}",
                            model.name()
                        );
                        let mut used = vec![false; slots.len()];
                        for (i, &(op, slot)) in rec.ops.iter().enumerate() {
                            let expect = slots.get(slot as usize).unwrap_or_else(|| {
                                panic!("node {i} slot {slot} out of range ({ctx})")
                            });
                            let actual = match op {
                                Op::Compute(c) => SlotOp::Compute(c.sig),
                                Op::Comm(c) => SlotOp::Comm(c),
                            };
                            assert_eq!(actual, *expect, "node {i} slot {slot} mismatch ({ctx})");
                            used[slot as usize] = true;
                        }
                        assert!(
                            used.iter().all(|&u| u),
                            "every slot must price at least one node ({ctx})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sink_stream_receives_same_nodes_and_edges_as_op_graph() {
        #[derive(Default)]
        struct Recorder {
            nodes: Vec<(u32, StreamKind)>,
            edges: Vec<(u32, u32)>,
        }
        impl crate::GraphSink for Recorder {
            fn push(&mut self, node: OpNode) -> u32 {
                let idx = self.nodes.len() as u32;
                self.nodes.push((node.device, node.stream));
                idx
            }
            fn add_edge(&mut self, from: u32, to: u32) {
                self.edges.push((from, to));
            }
        }

        let model = presets::megatron("1.7B");
        let cfg = plan(2, 2, 2, 1, 8, Sched::OneFOneB);
        let opts = GraphOptions::default();
        let graph = build_op_graph(&model, &cfg, &opts);
        let mut rec = Recorder::default();
        build_op_graph_into(&model, &cfg, &opts, &mut rec);

        assert_eq!(rec.nodes.len(), graph.num_nodes());
        assert_eq!(rec.edges.len(), graph.num_edges());
        for (i, &(device, stream)) in rec.nodes.iter().enumerate() {
            let n = graph.node(i as u32);
            assert_eq!((n.device, n.stream), (device, stream));
        }
        // Edge multiset and per-node ordering must agree: group recorder
        // edges by source in insertion order and compare child lists.
        let mut children = vec![Vec::new(); rec.nodes.len()];
        for &(from, to) in &rec.edges {
            children[from as usize].push(to);
        }
        for i in 0..rec.nodes.len() as u32 {
            assert_eq!(children[i as usize].as_slice(), graph.children(i));
        }
    }
}
