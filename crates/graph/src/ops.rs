//! Operator vocabulary of the execution graph.

use serde::{Deserialize, Serialize};
use vtrain_model::Bytes;
use vtrain_net::GroupPlacement;

/// The computation operator classes of a decoder-only LLM iteration.
///
/// Forward/backward MHA and FFN are the per-layer blocks of Fig. 2; the
/// backward variants include the recomputation forward when activation
/// recomputation is enabled (accounted during kernel decomposition).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompKind {
    /// Embedding lookup + positional add (first stage, forward).
    EmbeddingFwd,
    /// Embedding gradient scatter-add (first stage, backward).
    EmbeddingBwd,
    /// Multi-head-attention block, forward.
    MhaFwd,
    /// Multi-head-attention block, backward.
    MhaBwd,
    /// Feedforward block, forward.
    FfnFwd,
    /// Feedforward block, backward.
    FfnBwd,
    /// LM head (vocabulary projection + loss), forward (last stage).
    LmHeadFwd,
    /// LM head, backward (last stage).
    LmHeadBwd,
    /// Fused optimizer step over the stage's local parameters.
    WeightUpdate,
}

/// The shape key of a computation operator — the paper's *necessary
/// operator* identity (§III-C). Two layer-nodes with equal signatures launch
/// identical CUDA-kernel sequences, so only one needs profiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpSignature {
    /// Operator class.
    pub kind: CompKind,
    /// Hidden size `h`.
    pub hidden: usize,
    /// Attention heads `n` (0 where irrelevant).
    pub heads: usize,
    /// Sequence length `s`.
    pub seq: usize,
    /// Micro-batch size `m`.
    pub micro_batch: usize,
    /// Tensor-parallel degree `t` the operator is sharded across.
    pub tensor: usize,
    /// FFN expansion factor.
    pub ffn_expansion: usize,
    /// Vocabulary size (LM head / embedding ops; 0 elsewhere).
    pub vocab: usize,
    /// Local parameter count (WeightUpdate only; 0 elsewhere).
    pub params: u64,
    /// Whether activation recomputation prepends a forward replay to the
    /// backward kernels.
    pub recompute: bool,
}

/// A computation layer-node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ComputeOp {
    /// Shape/kernel identity.
    pub sig: OpSignature,
}

/// Communication operator classes (paper Figs. 5 and 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommKind {
    /// Tensor-parallel All-Reduce after an MHA/FFN block (sequentially
    /// dependent with the surrounding compute).
    TpAllReduce,
    /// Data-parallel gradient All-Reduce (per bucket when bucketing).
    DpAllReduce,
    /// Pipeline-parallel Send-Receive of boundary activations/gradients.
    PpSendRecv,
}

/// Whether a collective stays inside one NVLink domain or crosses nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommScope {
    /// All participants share a node (NVLink/NVSwitch).
    IntraNode,
    /// Participants span nodes (InfiniBand).
    InterNode,
}

/// A communication operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommOp {
    /// Collective class.
    pub kind: CommKind,
    /// Payload bytes per participant.
    pub bytes: Bytes,
    /// Participating ranks (`t` for TP, `d` for DP, 2 for P2P).
    pub ranks: usize,
    /// Network tier.
    pub scope: CommScope,
    /// How the group's ranks spread over the interconnect hierarchy
    /// (ranks per node / nodes per rack / racks) — the geometric input
    /// of the topology-aware collective cost models. The flat model
    /// reads only [`CommOp::scope`].
    pub placement: GroupPlacement,
    /// True if the runtime may overlap this collective with compute
    /// (DP bucket All-Reduces); false for the sequentially-dependent TP
    /// All-Reduces and pipeline transfers consumed on the critical path.
    pub overlappable: bool,
    /// Data-parallel groups sharing this GPU's node uplinks (drives the
    /// ground-truth emulator's interference term; 1 = no sharing).
    pub concurrent_groups: usize,
}

/// Any graph operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// A computation layer-node.
    Compute(ComputeOp),
    /// A communication operator.
    Comm(CommOp),
}

impl Op {
    /// The compute signature, if this is a compute node.
    pub fn signature(&self) -> Option<&OpSignature> {
        match self {
            Op::Compute(c) => Some(&c.sig),
            Op::Comm(_) => None,
        }
    }

    /// The communication descriptor, if this is a comm node.
    pub fn comm(&self) -> Option<&CommOp> {
        match self {
            Op::Comm(c) => Some(c),
            Op::Compute(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(kind: CompKind) -> OpSignature {
        OpSignature {
            kind,
            hidden: 1024,
            heads: 16,
            seq: 512,
            micro_batch: 2,
            tensor: 2,
            ffn_expansion: 4,
            vocab: 0,
            params: 0,
            recompute: true,
        }
    }

    #[test]
    fn signatures_hash_by_shape() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(sig(CompKind::MhaFwd));
        set.insert(sig(CompKind::MhaFwd));
        set.insert(sig(CompKind::FfnFwd));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn op_accessors_discriminate() {
        let c = Op::Compute(ComputeOp { sig: sig(CompKind::MhaFwd) });
        assert!(c.signature().is_some());
        assert!(c.comm().is_none());
        let k = Op::Comm(CommOp {
            kind: CommKind::TpAllReduce,
            bytes: Bytes::from_mib(4),
            ranks: 8,
            scope: CommScope::IntraNode,
            placement: GroupPlacement::intra_node(8),
            overlappable: false,
            concurrent_groups: 1,
        });
        assert!(k.comm().is_some());
        assert!(k.signature().is_none());
    }
}
