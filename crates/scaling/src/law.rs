//! The Chinchilla scaling law [Hoffmann et al. 2022] as used in §V-C.

use serde::{Deserialize, Serialize};
use vtrain_model::Flops;

/// Coefficients of the power-law fits `N = α·C^0.5`, `T = β·C^0.5`.
///
/// Defaults are the paper's quoted values `α = 0.089`, `β = 1.875`
/// (consistency check: `6·α·β ≈ 1`, since `C ≈ 6·N·T`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChinchillaLaw {
    /// Coefficient of the compute-optimal parameter count.
    pub alpha: f64,
    /// Coefficient of the compute-optimal token count.
    pub beta: f64,
}

impl Default for ChinchillaLaw {
    fn default() -> Self {
        ChinchillaLaw { alpha: 0.089, beta: 1.875 }
    }
}

/// A compute-optimal operating point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChinchillaPoint {
    /// Compute budget `C` in FLOPs.
    pub compute: f64,
    /// Compute-optimal parameter count `N`.
    pub params: f64,
    /// Compute-optimal training-token count `T`.
    pub tokens: f64,
}

impl ChinchillaLaw {
    /// The aggregate FLOPs budget of `gpus` GPUs running for `days` at
    /// `peak_flops` each, assuming 100 % utility (the *naive* budget the
    /// paper warns about).
    pub fn gpu_budget(gpus: usize, days: f64, peak_flops: f64) -> Flops {
        assert!(days > 0.0 && peak_flops > 0.0, "budget inputs must be positive");
        Flops::new(gpus as f64 * peak_flops * days * 86_400.0)
    }

    /// Same budget discounted by an effective utilization factor.
    pub fn effective_budget(gpus: usize, days: f64, peak_flops: f64, utilization: f64) -> Flops {
        assert!((0.0..=1.0).contains(&utilization), "utilization must be a fraction");
        Flops::new(Self::gpu_budget(gpus, days, peak_flops).as_f64() * utilization)
    }

    /// The compute-optimal `(N, T)` for budget `c`.
    pub fn optimal_point(&self, c: Flops) -> ChinchillaPoint {
        let sqrt_c = c.as_f64().sqrt();
        ChinchillaPoint {
            compute: c.as_f64(),
            params: self.alpha * sqrt_c,
            tokens: self.beta * sqrt_c,
        }
    }

    /// The compute-optimal token count for a model of `params` parameters
    /// (`T = N·β/α ≈ 21·N` at the default coefficients).
    pub fn tokens_for_params(&self, params: f64) -> f64 {
        params * self.beta / self.alpha
    }

    /// The compute budget a model of `params` parameters deserves
    /// (`C = (N/α)²`).
    pub fn compute_for_params(&self, params: f64) -> Flops {
        Flops::new((params / self.alpha).powi(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_naive_example_reproduced() {
        // §V-C: C = 2.72e24 ⇒ N = 145.61B, T = 2,912B.
        let c = ChinchillaLaw::gpu_budget(3360, 30.0, 312e12);
        assert!((c.as_f64() / 1e24 - 2.72).abs() < 0.02);
        let p = ChinchillaLaw::default().optimal_point(c);
        assert!((p.params / 1e9 - 145.6).abs() < 1.5, "N = {}", p.params / 1e9);
        // The paper reports T = 2,912B (≈ 20·N); β·√C gives ~3,090B — the
        // paper's own rounding of β. Accept the band.
        assert!((p.tokens / 1e9 - 2912.0).abs() < 200.0, "T = {}", p.tokens / 1e9);
    }

    #[test]
    fn coefficients_satisfy_six_nt_identity() {
        // C = 6·N·T ⇒ 6·α·β ≈ 1.
        let law = ChinchillaLaw::default();
        assert!((6.0 * law.alpha * law.beta - 1.0).abs() < 0.002);
    }

    #[test]
    fn tokens_to_params_ratio_is_about_21() {
        let law = ChinchillaLaw::default();
        assert!((law.tokens_for_params(1e9) / 1e9 - 21.07).abs() < 0.01);
    }

    #[test]
    fn effective_budget_discounts() {
        let full = ChinchillaLaw::gpu_budget(100, 1.0, 1e12);
        let eff = ChinchillaLaw::effective_budget(100, 1.0, 1e12, 0.35);
        assert!((eff.as_f64() / full.as_f64() - 0.35).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn optimal_point_round_trips(budget_exp in 20.0f64..26.0) {
            let law = ChinchillaLaw::default();
            let c = Flops::new(10f64.powf(budget_exp));
            let p = law.optimal_point(c);
            // compute_for_params inverts optimal_point.params.
            let back = law.compute_for_params(p.params);
            prop_assert!((back.as_f64() / c.as_f64() - 1.0).abs() < 1e-9);
            // Larger budgets ⇒ larger models and more tokens.
            let bigger = law.optimal_point(Flops::new(c.as_f64() * 2.0));
            prop_assert!(bigger.params > p.params && bigger.tokens > p.tokens);
        }
    }
}
