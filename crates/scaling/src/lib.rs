//! # vtrain-scaling
//!
//! Chinchilla scaling law and compute-optimal LLM sizing (paper §V-C).
//!
//! The Chinchilla law relates compute budget `C` (FLOPs) to the
//! compute-optimal parameter count `N = 0.089·C^0.5` and token count
//! `T = 1.875·C^0.5`. Naively deriving `C` from *peak* GPU throughput
//! overestimates the trainable model: real utilization is 30–45 %, so the
//! paper couples the law with vTrain's simulated *effective* throughput to
//! find the largest model that genuinely finishes within the time budget
//! (Table IV).
//!
//! # Examples
//!
//! ```
//! use vtrain_scaling::ChinchillaLaw;
//!
//! let law = ChinchillaLaw::default();
//! // Paper §V-C: 3,360 A100s for 30 days at 100 % utility.
//! let c = ChinchillaLaw::gpu_budget(3360, 30.0, 312e12);
//! let point = law.optimal_point(c);
//! assert!((point.params / 1e9 - 145.6).abs() < 1.5);
//! assert!((point.tokens / 1e9 - 2912.0).abs() < 200.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod law;
mod optimizer;

pub use law::{ChinchillaLaw, ChinchillaPoint};
pub use optimizer::{
    compute_optimal_search, evaluate_candidate, table_iv_candidates, CandidateOutcome,
    CandidateSpec,
};
