//! Realistic compute-optimal model sizing via simulated effective
//! throughput (paper Table IV).

use serde::{Deserialize, Serialize};
use vtrain_core::search::{self, SearchLimits, Sweep};
use vtrain_core::Estimator;
use vtrain_model::{ModelConfig, TimeNs};
use vtrain_parallel::{ParallelConfig, PipelineSchedule};

use crate::law::ChinchillaLaw;

/// One `(h, L)` model candidate of the Table IV grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateSpec {
    /// Hidden size.
    pub hidden: usize,
    /// Decoder layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
}

/// The Table IV candidate grid (h, L, n).
pub fn table_iv_candidates() -> Vec<CandidateSpec> {
    [
        (12_288, 80, 96),
        (12_288, 70, 96),
        (12_288, 60, 96),
        (10_240, 70, 80),
        (10_240, 60, 80),
        (9216, 80, 72),
        (9216, 70, 72),
    ]
    .into_iter()
    .map(|(hidden, layers, heads)| CandidateSpec { hidden, layers, heads })
    .collect()
}

/// Verdict on one candidate model under the compute budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CandidateOutcome {
    /// The candidate's architecture.
    pub spec: CandidateSpec,
    /// Parameter count `N`.
    pub params: f64,
    /// Chinchilla-optimal token count `T = N·β/α`.
    pub tokens: f64,
    /// The best 3D-parallel plan found for the cluster.
    pub best_plan: ParallelConfig,
    /// Its simulated single-iteration time.
    pub iteration_time: TimeNs,
    /// Its GPU compute utilization.
    pub utilization: f64,
    /// Estimated wall-clock days to train `T` tokens.
    pub training_days: f64,
}

impl CandidateSpec {
    /// Materializes the model description (`s = 2048`, Megatron vocab).
    pub fn to_model(self) -> ModelConfig {
        ModelConfig::builder()
            .name(format!("candidate-h{}-L{}", self.hidden, self.layers))
            .hidden_size(self.hidden)
            .num_layers(self.layers)
            .num_heads(self.heads)
            .seq_len(2048)
            .vocab_size(51_200)
            .build()
            .expect("candidate grids are valid")
    }
}

/// Evaluates one candidate: sweeps the plan space, takes the
/// fastest-iteration plan, and converts throughput into days-to-train the
/// candidate's Chinchilla-optimal token count.
///
/// Returns `None` if no feasible plan exists on the cluster.
pub fn evaluate_candidate(
    estimator: &Estimator,
    law: &ChinchillaLaw,
    spec: CandidateSpec,
    global_batch: usize,
    limits: &SearchLimits,
    threads: usize,
) -> Option<CandidateOutcome> {
    let model = spec.to_model();
    let outcome = Sweep::on(estimator, &model)
        .batch(global_batch)
        .schedule(PipelineSchedule::OneFOneB)
        .limits(*limits)
        .threads(threads)
        .run()
        .into_outcome();
    let best = search::fastest_within_gpu_budget(&outcome.points, estimator.cluster().total_gpus)?;
    let params = model.num_parameters() as f64;
    let tokens = law.tokens_for_params(params);
    let tokens_per_iter = best.estimate.tokens_per_iteration as f64;
    let iterations = tokens / tokens_per_iter;
    let days = iterations * best.estimate.iteration_time.as_secs_f64() / 86_400.0;
    Some(CandidateOutcome {
        spec,
        params,
        tokens,
        best_plan: best.plan,
        iteration_time: best.estimate.iteration_time,
        utilization: best.estimate.utilization,
        training_days: days,
    })
}

/// Full Table IV workflow: evaluate every candidate and return
/// `(all outcomes, the compute-optimal pick)` — the largest model whose
/// Chinchilla-complete training fits in `days_budget`.
pub fn compute_optimal_search(
    estimator: &Estimator,
    law: &ChinchillaLaw,
    candidates: &[CandidateSpec],
    global_batch: usize,
    days_budget: f64,
    limits: &SearchLimits,
    threads: usize,
) -> (Vec<CandidateOutcome>, Option<CandidateOutcome>) {
    let outcomes: Vec<CandidateOutcome> = candidates
        .iter()
        .filter_map(|&spec| evaluate_candidate(estimator, law, spec, global_batch, limits, threads))
        .collect();
    let best = outcomes
        .iter()
        .filter(|o| o.training_days <= days_budget)
        .max_by(|a, b| a.params.total_cmp(&b.params))
        .cloned();
    (outcomes, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_parallel::ClusterSpec;

    #[test]
    fn candidate_grid_matches_table_iv() {
        let grid = table_iv_candidates();
        assert_eq!(grid.len(), 7);
        // First row is the naive 145.6B point; fifth is the realistic pick.
        let first = grid[0].to_model();
        assert!((first.num_parameters_billion() - 145.6).abs() < 2.0);
        let pick = grid[4].to_model();
        assert!((pick.num_parameters_billion() - 76.0).abs() < 2.0);
    }

    #[test]
    fn evaluate_candidate_produces_consistent_outcome() {
        // Small cluster + small candidate to keep the test fast.
        let estimator = Estimator::builder(ClusterSpec::aws_p4d(16)).build();
        let law = ChinchillaLaw::default();
        let spec = CandidateSpec { hidden: 2048, layers: 16, heads: 16 };
        let limits =
            SearchLimits { max_tensor: 4, max_data: 4, max_pipeline: 4, max_micro_batch: 2 };
        let out = evaluate_candidate(&estimator, &law, spec, 32, &limits, 4).unwrap();
        assert!(out.training_days > 0.0);
        assert!((out.tokens / out.params - 21.07).abs() < 0.01);
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
    }

    #[test]
    fn search_picks_largest_feasible_model() {
        let estimator = Estimator::builder(ClusterSpec::aws_p4d(16)).build();
        let law = ChinchillaLaw::default();
        let candidates = [
            CandidateSpec { hidden: 1024, layers: 8, heads: 16 },
            CandidateSpec { hidden: 2048, layers: 16, heads: 16 },
        ];
        let limits =
            SearchLimits { max_tensor: 4, max_data: 4, max_pipeline: 4, max_micro_batch: 2 };
        let (outcomes, best) =
            compute_optimal_search(&estimator, &law, &candidates, 32, f64::MAX, &limits, 4);
        assert_eq!(outcomes.len(), 2);
        let best = best.unwrap();
        // With an unbounded day budget the larger model wins.
        assert_eq!(best.spec.hidden, 2048);
        // Tighter-than-feasible budget selects nothing.
        let (_, none) = compute_optimal_search(&estimator, &law, &candidates, 32, 1e-9, &limits, 4);
        assert!(none.is_none());
    }
}
