//! Timeline recording and Chrome trace-event JSON export.
//!
//! The recorder accumulates complete (`ph:"X"`) duration spans on
//! `(pid, tid)` tracks — in this workspace, `pid` is a device (or rank
//! group) and `tid` a stream — and serializes them as the JSON object
//! format of the [Trace Event spec], loadable in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev).
//!
//! Export is deterministic: metadata events first (sorted by track),
//! then spans sorted by `(pid, tid, start, insertion order)` — so a
//! golden test can pin the bytes.
//!
//! [Trace Event spec]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;

use crate::escape_json;

/// One complete span on a `(pid, tid)` track. Times are nanoseconds on
/// the simulated (or wall) clock; export converts to the trace format's
/// microseconds exactly (3 decimal places).
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Track group (device / rank group).
    pub pid: u64,
    /// Track within the group (stream).
    pub tid: u64,
    /// Span name (e.g. the operator kind).
    pub name: String,
    /// Span category (e.g. `Fwd` / `Bwd` / `Comm` / `WeightUpdate`).
    pub cat: String,
    /// Start, in nanoseconds.
    pub start_ns: u64,
    /// Duration, in nanoseconds.
    pub dur_ns: u64,
    /// Numeric `args` shown in the trace viewer's detail pane.
    pub args: Vec<(String, u64)>,
}

/// One counter sample on a `pid` track: an instantaneous multi-series
/// value (`ph:"C"`), rendered by trace viewers as a stacked area chart —
/// e.g. per-tier link utilization under the fair-sharing network model.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Track group the counter chart is attached to.
    pub pid: u64,
    /// Counter name (one chart per `(pid, name)`).
    pub name: String,
    /// Sample time, in nanoseconds.
    pub ts_ns: u64,
    /// `(series, value)` pairs plotted at this instant.
    pub values: Vec<(String, u64)>,
}

/// Accumulates named tracks and spans; exports Chrome trace-event JSON.
#[derive(Debug, Default)]
pub struct TimelineRecorder {
    process_names: BTreeMap<u64, String>,
    thread_names: BTreeMap<(u64, u64), String>,
    spans: Vec<TraceSpan>,
    counters: Vec<CounterSample>,
}

/// `ns` rendered as microseconds with exact 3-decimal precision.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl TimelineRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a track group (`process_name` metadata).
    pub fn set_track_name(&mut self, pid: u64, name: impl Into<String>) {
        self.process_names.insert(pid, name.into());
    }

    /// Names a track within a group (`thread_name` metadata).
    pub fn set_stream_name(&mut self, pid: u64, tid: u64, name: impl Into<String>) {
        self.thread_names.insert((pid, tid), name.into());
    }

    /// Records one complete span.
    pub fn record(&mut self, span: TraceSpan) {
        self.spans.push(span);
    }

    /// Records one counter sample. Counters are exported as `ph:"C"`
    /// events on their own chart per `(pid, name)`; they do not affect
    /// span accounting ([`TimelineRecorder::max_end_ns`],
    /// [`TimelineRecorder::busy_per_stream`], …).
    pub fn record_counter(&mut self, sample: CounterSample) {
        self.counters.push(sample);
    }

    /// The recorded counter samples, in insertion order.
    pub fn counters(&self) -> &[CounterSample] {
        &self.counters
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The recorded spans, in insertion order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// The latest span end (ns) on track `(pid, tid)`, or 0 if none.
    pub fn stream_end_ns(&self, pid: u64, tid: u64) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.pid == pid && s.tid == tid)
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap_or(0)
    }

    /// The latest span end (ns) across every track, or 0 if empty.
    pub fn max_end_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.start_ns + s.dur_ns).max().unwrap_or(0)
    }

    /// Sum of span durations per `(pid, tid)` track, sorted by track.
    pub fn busy_per_stream(&self) -> Vec<((u64, u64), u64)> {
        let mut busy: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for s in &self.spans {
            *busy.entry((s.pid, s.tid)).or_default() += s.dur_ns;
        }
        busy.into_iter().collect()
    }

    /// Sum of span durations per category, sorted by category name.
    pub fn busy_per_category(&self) -> Vec<(String, u64)> {
        let mut busy: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            *busy.entry(s.cat.clone()).or_default() += s.dur_ns;
        }
        busy.into_iter().collect()
    }

    /// Serializes the timeline as Chrome trace-event JSON (one event per
    /// line; byte-deterministic for a given recording).
    pub fn to_chrome_trace(&self) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(
            self.process_names.len() + self.thread_names.len() + self.spans.len(),
        );
        for (pid, name) in &self.process_names {
            let mut line = format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\""
            );
            escape_json(name, &mut line);
            line.push_str("\"}}");
            lines.push(line);
        }
        for ((pid, tid), name) in &self.thread_names {
            let mut line = format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\""
            );
            escape_json(name, &mut line);
            line.push_str("\"}}");
            lines.push(line);
        }
        // Stable span order: by track, then start time, then insertion
        // order (the sort is stable, so ties keep their recording order).
        let mut order: Vec<usize> = (0..self.spans.len()).collect();
        order.sort_by_key(|&i| {
            let s = &self.spans[i];
            (s.pid, s.tid, s.start_ns)
        });
        for i in order {
            let s = &self.spans[i];
            let mut line = String::from("{\"ph\":\"X\",\"pid\":");
            line.push_str(&format!("{},\"tid\":{},\"name\":\"", s.pid, s.tid));
            escape_json(&s.name, &mut line);
            line.push_str("\",\"cat\":\"");
            escape_json(&s.cat, &mut line);
            line.push_str(&format!(
                "\",\"ts\":{},\"dur\":{}",
                micros(s.start_ns),
                micros(s.dur_ns)
            ));
            if !s.args.is_empty() {
                line.push_str(",\"args\":{");
                for (j, (key, value)) in s.args.iter().enumerate() {
                    if j > 0 {
                        line.push(',');
                    }
                    line.push('"');
                    escape_json(key, &mut line);
                    line.push_str(&format!("\":{value}"));
                }
                line.push('}');
            }
            line.push('}');
            lines.push(line);
        }
        // Counters after spans, sorted by (pid, name, time, insertion).
        let mut order: Vec<usize> = (0..self.counters.len()).collect();
        order.sort_by(|&a, &b| {
            let (x, y) = (&self.counters[a], &self.counters[b]);
            (x.pid, &x.name, x.ts_ns).cmp(&(y.pid, &y.name, y.ts_ns))
        });
        for i in order {
            let c = &self.counters[i];
            let mut line = format!("{{\"ph\":\"C\",\"pid\":{},\"tid\":0,\"name\":\"", c.pid);
            escape_json(&c.name, &mut line);
            line.push_str(&format!("\",\"ts\":{},\"args\":{{", micros(c.ts_ns)));
            for (j, (series, value)) in c.values.iter().enumerate() {
                if j > 0 {
                    line.push(',');
                }
                line.push('"');
                escape_json(series, &mut line);
                line.push_str(&format!("\":{value}"));
            }
            line.push_str("}}");
            lines.push(line);
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&lines.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pid: u64, tid: u64, name: &str, start: u64, dur: u64) -> TraceSpan {
        TraceSpan {
            pid,
            tid,
            name: name.into(),
            cat: "Fwd".into(),
            start_ns: start,
            dur_ns: dur,
            args: vec![("kernels".into(), 4)],
        }
    }

    #[test]
    fn export_is_deterministic_and_track_sorted() {
        let mut rec = TimelineRecorder::new();
        rec.set_track_name(1, "device 1");
        rec.set_track_name(0, "device 0");
        rec.set_stream_name(0, 0, "compute");
        rec.record(span(1, 0, "later-track", 0, 10));
        rec.record(span(0, 0, "b", 50, 10));
        rec.record(span(0, 0, "a", 0, 50));
        let json = rec.to_chrome_trace();
        assert_eq!(json, rec.to_chrome_trace(), "byte-deterministic");
        let a = json.find("\"name\":\"a\"").unwrap();
        let b = json.find("\"name\":\"b\"").unwrap();
        let later = json.find("later-track").unwrap();
        assert!(a < b, "same track sorts by start time");
        assert!(b < later, "track 0 precedes track 1");
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"ts\":0.000,\"dur\":0.050"));
    }

    #[test]
    fn stream_accounting() {
        let mut rec = TimelineRecorder::new();
        rec.record(span(0, 0, "a", 0, 100));
        rec.record(span(0, 1, "c", 25, 100));
        rec.record(span(0, 0, "b", 100, 50));
        assert_eq!(rec.stream_end_ns(0, 0), 150);
        assert_eq!(rec.max_end_ns(), 150);
        assert_eq!(rec.busy_per_stream(), vec![((0, 0), 150), ((0, 1), 100)]);
        assert_eq!(rec.busy_per_category(), vec![("Fwd".to_owned(), 250)]);
    }

    #[test]
    fn micros_is_exact() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(2_000_001), "2000.001");
    }
}
