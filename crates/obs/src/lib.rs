//! # vtrain-obs
//!
//! The workspace's observability layer: a zero-cost-when-disabled span
//! API, a sharded [`MetricsRegistry`] (counters, gauges, log-bucket
//! histograms), and a [`TimelineRecorder`] exporting Chrome trace-event
//! JSON loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Instrumentation across the stack (the sweep executor, the profile
//! cache, the engine event loop, the cluster scheduler) is gated on one
//! process-global flag: with [`enabled`]`() == false` (the default) every
//! instrumentation point reduces to a single relaxed atomic load — no
//! clock reads, no allocation, no locking — so the simulation hot paths
//! stay exactly as fast as before this crate existed.
//!
//! The crate is deliberately dependency-free so that every other crate in
//! the workspace (including the engine at the bottom of the stack) can
//! depend on it without cycles.
//!
//! # Examples
//!
//! ```
//! vtrain_obs::set_enabled(true);
//! {
//!     let _span = vtrain_obs::span!("lower", tasks = 42u64);
//!     // ... timed work ...
//! }
//! let reg = vtrain_obs::global();
//! reg.counter("sweep.evaluated").add(3);
//! assert_eq!(reg.counter("sweep.evaluated").get(), 3);
//! assert!(reg.histogram("span.lower.ns").count() >= 1);
//! vtrain_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod span;
mod timeline;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use span::{thread_id, SpanGuard};
pub use timeline::{CounterSample, TimelineRecorder, TraceSpan};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the process-global instrumentation on or off.
///
/// Off (the default), every `span!` and metrics publish point in the
/// workspace is a single relaxed load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global [`MetricsRegistry`] all instrumentation points
/// publish into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Opens a timed span over a lexical scope.
///
/// `span!("name")` returns a guard that, while [`enabled`], records its
/// wall-clock lifetime into the global histogram `span.<name>.ns` (and
/// bumps the counter `span.<name>.calls`). Optional `key = value` fields
/// (values coerced to `u64`) land in counters `span.<name>.<key>`.
/// Disabled, the guard is inert: no clock read, no allocation.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $crate::SpanGuard::enter($name);
        $(guard.field(stringify!($key), ($value) as u64);)+
        guard
    }};
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}
