//! Sharded metrics registry: counters, gauges, and fixed log-bucket
//! histograms with quantile accessors.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::escape_json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (saturating high-water
    /// mark semantics).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` holds values whose bit length is
/// `i`, i.e. `[2^(i-1), 2^i)` for `i ≥ 1` and exactly `{0}` for `i = 0`,
/// covering the full `u64` range.
const BUCKETS: usize = 65;

/// A lock-free histogram over fixed log₂ buckets.
///
/// Recording is two relaxed atomic adds; quantiles ([`Histogram::p50`],
/// [`Histogram::p95`], [`Histogram::p99`]) are resolved to the upper
/// bound of the bucket containing the requested rank, so they are exact
/// to within a factor of 2 — plenty for latency distributions spanning
/// orders of magnitude.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [const { AtomicU64::new(0) }; BUCKETS], sum: AtomicU64::new(0) }
    }
}

/// The bucket index of a value: its bit length.
#[inline]
fn bucket(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), or 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the requested quantile, 1-based, clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in snapshot.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

const SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    counters: HashMap<String, Arc<Counter>>,
    gauges: HashMap<String, Arc<Gauge>>,
    histograms: HashMap<String, Arc<Histogram>>,
}

/// A concurrent, sharded name → metric registry.
///
/// Lookup hashes the metric name to one of 16 `RwLock`-guarded shards;
/// the returned `Arc` can be cached by callers so the hot path never
/// touches the lock. Metric updates themselves are lock-free atomics.
pub struct MetricsRegistry {
    shards: Vec<RwLock<Shard>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a, fixed and dependency-free: shard choice must not vary run to
/// run, or snapshots could interleave differently under contention.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % SHARDS as u64) as usize
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry { shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect() }
    }

    fn with_shard<T>(&self, name: &str, f: impl FnOnce(&mut Shard) -> T) -> T {
        let mut shard = self.shards[shard_of(name)].write().expect("metrics shard poisoned");
        f(&mut shard)
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) =
            self.shards[shard_of(name)].read().expect("metrics shard poisoned").counters.get(name)
        {
            return Arc::clone(c);
        }
        self.with_shard(name, |s| Arc::clone(s.counters.entry(name.to_owned()).or_default()))
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) =
            self.shards[shard_of(name)].read().expect("metrics shard poisoned").gauges.get(name)
        {
            return Arc::clone(g);
        }
        self.with_shard(name, |s| Arc::clone(s.gauges.entry(name.to_owned()).or_default()))
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) =
            self.shards[shard_of(name)].read().expect("metrics shard poisoned").histograms.get(name)
        {
            return Arc::clone(h);
        }
        self.with_shard(name, |s| Arc::clone(s.histograms.entry(name.to_owned()).or_default()))
    }

    /// Removes every metric (tests and fresh CLI runs).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.write().expect("metrics shard poisoned");
            s.counters.clear();
            s.gauges.clear();
            s.histograms.clear();
        }
    }

    /// Serializes a point-in-time snapshot as deterministic JSON: metric
    /// names sorted within each section, histograms expanded to
    /// `{count, sum, mean, p50, p95, p99}`.
    pub fn to_json(&self) -> String {
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut gauges: Vec<(String, u64)> = Vec::new();
        let mut histograms: Vec<(String, Arc<Histogram>)> = Vec::new();
        for shard in &self.shards {
            let s = shard.read().expect("metrics shard poisoned");
            counters.extend(s.counters.iter().map(|(k, v)| (k.clone(), v.get())));
            gauges.extend(s.gauges.iter().map(|(k, v)| (k.clone(), v.get())));
            histograms.extend(s.histograms.iter().map(|(k, v)| (k.clone(), Arc::clone(v))));
        }
        counters.sort();
        gauges.sort();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));

        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(name, &mut out);
            out.push_str(&format!("\": {v}"));
        }
        out.push_str(if counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(name, &mut out);
            out.push_str(&format!("\": {v}"));
        }
        out.push_str(if gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(name, &mut out);
            out.push_str(&format!(
                "\": {{ \"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \
                 \"p99\": {} }}",
                h.count(),
                h.sum(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        out.push_str(if histograms.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.counter("a").inc();
        reg.gauge("g").set(7);
        reg.gauge("g").set_max(3); // lower — must not shrink
        assert_eq!(reg.counter("a").get(), 3);
        assert_eq!(reg.gauge("g").get(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1107);
        // 7 observations: p50 is the 4th (value 2 → bucket [2,4) → upper 3).
        assert_eq!(h.p50(), 3);
        // p99 is the 7th (value 1000 → bucket [512,1024) → upper 1023).
        assert_eq!(h.p99(), 1023);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(5);
        reg.histogram("h").record(10);
        let a = reg.to_json();
        let b = reg.to_json();
        assert_eq!(a, b, "snapshot must be deterministic");
        let first = a.find("a.first").unwrap();
        let last = a.find("z.last").unwrap();
        assert!(first < last, "counters must be name-sorted");
    }

    #[test]
    fn concurrent_counters_sum_exactly() {
        use std::sync::Arc as StdArc;
        let reg = StdArc::new(MetricsRegistry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let reg = StdArc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("shared");
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                    reg.histogram("lat").record(1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("shared").get(), THREADS as u64 * PER_THREAD);
        assert_eq!(reg.histogram("lat").count(), THREADS as u64);
    }
}
