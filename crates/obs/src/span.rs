//! The `span!` guard: monotonic timing + thread id + key=value fields,
//! reduced to one relaxed atomic load when instrumentation is off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A small dense id for the current thread (0, 1, 2, … in first-use
/// order), suitable as a trace track id.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// An RAII guard over a timed span — construct via [`crate::span!`].
///
/// While instrumentation is enabled the guard stamps `Instant::now()` on
/// entry and, on drop, records the elapsed nanoseconds into the global
/// histogram `span.<name>.ns`, bumps `span.<name>.calls`, and adds every
/// [`field`](SpanGuard::field) into `span.<name>.<key>`. Disabled, entry
/// is a single relaxed load and drop is a `None` check.
#[must_use = "a span measures its lexical scope; bind it to a variable"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Opens the span (inert when instrumentation is disabled).
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        let start = if crate::enabled() { Some(Instant::now()) } else { None };
        SpanGuard { name, start, fields: Vec::new() }
    }

    /// Attaches a `key = value` field, published as the counter
    /// `span.<name>.<key>` when the span closes. No-op while disabled.
    #[inline]
    pub fn field(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.fields.push((key, value));
        }
    }

    /// Whether the span is live (instrumentation was enabled at entry).
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let reg = crate::global();
        reg.histogram(&format!("span.{}.ns", self.name)).record(elapsed);
        reg.counter(&format!("span.{}.calls", self.name)).inc();
        for (key, value) in self.fields.drain(..) {
            reg.counter(&format!("span.{}.{key}", self.name)).add(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_dense_and_distinct() {
        let mine = thread_id();
        assert_eq!(mine, thread_id(), "stable within a thread");
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(mine, other);
    }

    #[test]
    fn disabled_span_records_nothing() {
        crate::set_enabled(false);
        let guard = crate::span!("never", items = 3u64);
        assert!(!guard.is_recording());
        drop(guard);
        assert_eq!(crate::global().counter("span.never.calls").get(), 0);
    }
}
