//! Collective-communication latency models.
//!
//! Intra-node collectives ride NVLink/NVSwitch; inter-node collectives use
//! the NCCL analytical form the paper adopts as Equation (1):
//!
//! ```text
//! t = S/B · 2(n-1)/n
//! ```
//!
//! with `B = α·Bmax` where `α` is the *bandwidth effectiveness factor*
//! (§IV). Point-to-point pipeline transfers are a simple
//! latency + size/bandwidth model, reflecting the paper's observation that
//! Send-Receive is insensitive to interconnect bandwidth.

use serde::{Deserialize, Serialize};
use vtrain_model::{Bytes, TimeNs};

/// The `2(n-1)/n` ring All-Reduce traffic multiplier.
///
/// Each of `n` ranks sends and receives each byte twice except its own
/// shard (reduce-scatter + all-gather).
///
/// # Panics
///
/// Panics if `ranks == 0`.
pub fn ring_factor(ranks: usize) -> f64 {
    assert!(ranks > 0, "collective needs at least one rank");
    2.0 * (ranks as f64 - 1.0) / ranks as f64
}

/// Latency of a ring All-Reduce of `bytes` across `ranks` peers sharing
/// `bandwidth_per_rank` bytes/s each, plus a fixed `base_latency`
/// (Equation (1) of the paper with `B = bandwidth_per_rank`).
///
/// Boundary semantics (pinned by the `boundary_*` tests): a zero-byte
/// collective is a no-op the runtime skips entirely (zero cost), while a
/// single-rank collective with a payload still launches its kernel and
/// pays `base_latency` — the pre-fix code silently dropped it.
pub fn all_reduce_time(
    bytes: Bytes,
    ranks: usize,
    bandwidth_per_rank: f64,
    base_latency: TimeNs,
) -> TimeNs {
    assert!(bandwidth_per_rank > 0.0, "bandwidth must be positive");
    if bytes == Bytes::ZERO {
        return TimeNs::ZERO;
    }
    if ranks <= 1 {
        return base_latency;
    }
    let transfer = bytes.as_f64() * ring_factor(ranks) / bandwidth_per_rank;
    base_latency + TimeNs::from_secs_f64(transfer)
}

/// Latency of a point-to-point Send-Receive of `bytes` over a link of
/// `bandwidth` bytes/s with `base_latency` setup time. A zero-byte
/// transfer is a no-op and costs nothing.
pub fn send_recv_time(bytes: Bytes, bandwidth: f64, base_latency: TimeNs) -> TimeNs {
    assert!(bandwidth > 0.0, "bandwidth must be positive");
    if bytes == Bytes::ZERO {
        return TimeNs::ZERO;
    }
    base_latency + TimeNs::from_secs_f64(bytes.as_f64() / bandwidth)
}

/// The paper's Equation (1) inter-node All-Reduce model with an explicit
/// bandwidth effectiveness factor `α` applied to the maximum bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InterNodeModel {
    /// Maximum per-participant inter-node bandwidth `Bmax`, bytes/s.
    pub max_bandwidth: f64,
    /// Bandwidth effectiveness factor `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Fixed collective launch latency.
    pub base_latency: TimeNs,
}

impl InterNodeModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or bandwidth is non-positive.
    pub fn new(max_bandwidth: f64, alpha: f64, base_latency: TimeNs) -> Self {
        assert!(max_bandwidth > 0.0, "bandwidth must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        InterNodeModel { max_bandwidth, alpha, base_latency }
    }

    /// Effective bandwidth `B = α·Bmax`.
    pub fn effective_bandwidth(&self) -> f64 {
        self.alpha * self.max_bandwidth
    }

    /// All-Reduce latency per Equation (1).
    pub fn all_reduce(&self, bytes: Bytes, ranks: usize) -> TimeNs {
        all_reduce_time(bytes, ranks, self.effective_bandwidth(), self.base_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ring_factor_limits() {
        assert_eq!(ring_factor(1), 0.0);
        assert_eq!(ring_factor(2), 1.0);
        assert!((ring_factor(512) - 2.0).abs() < 0.01);
    }

    #[test]
    fn boundary_single_rank_still_pays_launch_latency() {
        // A one-rank "collective" moves nothing but still launches: the
        // base latency must survive (it used to be silently dropped).
        assert_eq!(
            all_reduce_time(Bytes::from_gib(1), 1, 1e9, TimeNs::from_micros(10)),
            TimeNs::from_micros(10)
        );
    }

    #[test]
    fn boundary_zero_bytes_is_a_noop() {
        // Zero-byte collectives and transfers are skipped by the runtime:
        // no ring traffic, no launch latency.
        for ranks in [1, 2, 8, 512] {
            assert_eq!(
                all_reduce_time(Bytes::ZERO, ranks, 1e9, TimeNs::from_micros(10)),
                TimeNs::ZERO
            );
        }
        assert_eq!(send_recv_time(Bytes::ZERO, 1e9, TimeNs::from_micros(20)), TimeNs::ZERO);
    }

    #[test]
    fn boundary_costs_are_monotone_through_the_edges() {
        let lat = TimeNs::from_micros(10);
        // bytes: 0 → 1 → many is non-decreasing.
        let t0 = all_reduce_time(Bytes::ZERO, 4, 1e9, lat);
        let t1 = all_reduce_time(Bytes::from_bytes(1), 4, 1e9, lat);
        let t2 = all_reduce_time(Bytes::from_mib(1), 4, 1e9, lat);
        assert!(t0 <= t1 && t1 <= t2);
        // ranks: 1 → 2 is non-decreasing for any payload.
        assert!(
            all_reduce_time(Bytes::from_mib(1), 1, 1e9, lat)
                <= all_reduce_time(Bytes::from_mib(1), 2, 1e9, lat)
        );
    }

    #[test]
    fn equation_one_example() {
        // 1 GiB across 8 nodes at 100 GB/s, α = 1.0:
        // t = 2^30 · (2·7/8) / 1e11 ≈ 18.8 ms.
        let model = InterNodeModel::new(100e9, 1.0, TimeNs::ZERO);
        let t = model.all_reduce(Bytes::from_gib(1), 8);
        assert!((t.as_secs_f64() - 0.0188).abs() < 0.001, "{t}");
    }

    #[test]
    fn alpha_scales_time_inversely() {
        let full = InterNodeModel::new(100e9, 1.0, TimeNs::ZERO);
        let half = InterNodeModel::new(100e9, 0.5, TimeNs::ZERO);
        let b = Bytes::from_mib(256);
        let ratio = half.all_reduce(b, 4).as_secs_f64() / full.all_reduce(b, 4).as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_validated() {
        let _ = InterNodeModel::new(1e9, 1.5, TimeNs::ZERO);
    }

    #[test]
    fn send_recv_is_latency_plus_transfer() {
        let t = send_recv_time(Bytes::from_mib(100), 1e9, TimeNs::from_micros(20));
        let expect = 20e-6 + 100.0 * 1024.0 * 1024.0 / 1e9;
        assert!((t.as_secs_f64() - expect).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn all_reduce_monotone_in_size_and_ranks(
            mib_a in 1u64..2048, mib_b in 1u64..2048, r in 2usize..512,
        ) {
            let (lo, hi) = if mib_a <= mib_b { (mib_a, mib_b) } else { (mib_b, mib_a) };
            let bw = 100e9;
            let lat = TimeNs::from_micros(20);
            prop_assert!(
                all_reduce_time(Bytes::from_mib(lo), r, bw, lat)
                    <= all_reduce_time(Bytes::from_mib(hi), r, bw, lat)
            );
            prop_assert!(
                all_reduce_time(Bytes::from_mib(lo), r, bw, lat)
                    <= all_reduce_time(Bytes::from_mib(lo), r + 1, bw, lat)
            );
        }
    }
}
