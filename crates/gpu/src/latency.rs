//! Analytical A100 kernel-latency model.
//!
//! Plays the role of the physical GPU in the paper's profiling flow: given a
//! kernel shape, produce the wall-clock latency CUPTI would have reported.
//! GEMMs follow a roofline with tensor-core tile (128×128) and wave (108 SM)
//! quantization — the dominant second-order effect for transformer GEMMs —
//! while normalization/elementwise kernels are HBM-bandwidth bound with a
//! fixed device-side ramp-up cost.

use vtrain_model::TimeNs;
use vtrain_parallel::GpuSpec;

use crate::kernels::KernelKind;

/// GEMM output tile produced per thread-block by ampere FP16 kernels.
const TILE_M: u64 = 128;
/// GEMM output tile columns.
const TILE_N: u64 = 128;
/// Peak fraction of tensor-core throughput achieved by large,
/// well-quantized GEMMs (cuBLAS sustains ~70-75 % on transformer-shaped
/// FP16 GEMMs on A100, short of the ~85 % synthetic-benchmark peak).
const GEMM_PEAK_EFFICIENCY: f64 = 0.72;
/// Achievable fraction of HBM bandwidth for streaming kernels.
const STREAM_EFFICIENCY: f64 = 0.8;
/// Device-side fixed cost of any kernel (pipeline fill, tail effects).
const KERNEL_RAMP: TimeNs = TimeNs::from_micros(2);

/// Deterministic kernel-latency oracle for one GPU.
///
/// # Examples
///
/// ```
/// use vtrain_gpu::{DeviceModel, KernelKind};
/// use vtrain_parallel::GpuSpec;
///
/// let dev = DeviceModel::new(GpuSpec::a100_40gb());
/// let big = dev.kernel_latency(&KernelKind::Gemm { m: 8192, n: 8192, k: 8192, batch: 1 });
/// let small = dev.kernel_latency(&KernelKind::Gemm { m: 128, n: 128, k: 128, batch: 1 });
/// assert!(big > small);
/// ```
#[derive(Clone, Debug)]
pub struct DeviceModel {
    spec: GpuSpec,
}

impl DeviceModel {
    /// Creates a latency model for the given GPU.
    pub fn new(spec: GpuSpec) -> Self {
        DeviceModel { spec }
    }

    /// The modeled GPU's spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Fraction of peak tensor-core throughput a GEMM of this shape
    /// achieves, combining tile quantization (partial 128×128 tiles do full
    /// work), wave quantization (the last wave may underfill the 108 SMs),
    /// and reduction-depth efficiency (short `k` cannot hide the MMA
    /// pipeline latency).
    pub fn gemm_efficiency(&self, m: u64, n: u64, k: u64, batch: u64) -> f64 {
        let tiles_m = m.div_ceil(TILE_M);
        let tiles_n = n.div_ceil(TILE_N);
        let tiles = tiles_m * tiles_n * batch;
        let tile_util =
            (m as f64 / (tiles_m * TILE_M) as f64) * (n as f64 / (tiles_n * TILE_N) as f64);
        let waves = tiles.div_ceil(self.spec.sm_count as u64);
        let wave_util = tiles as f64 / (waves * self.spec.sm_count as u64) as f64;
        let k_util = k as f64 / (k as f64 + 64.0);
        GEMM_PEAK_EFFICIENCY * tile_util * wave_util * k_util
    }

    /// Wall-clock latency of one kernel on this device.
    ///
    /// GEMMs take `max(compute roofline / efficiency, memory roofline)`;
    /// all other kernels are HBM-bound streams. Every kernel pays a fixed
    /// device-side ramp cost.
    pub fn kernel_latency(&self, kind: &KernelKind) -> TimeNs {
        let mem_secs = kind.bytes() / (self.spec.memory_bandwidth * STREAM_EFFICIENCY);
        let secs = match *kind {
            KernelKind::Gemm { m, n, k, batch } => {
                let eff = self.gemm_efficiency(m, n, k, batch);
                let compute_secs = kind.flops() / (self.spec.peak_fp16_flops * eff);
                compute_secs.max(mem_secs)
            }
            _ => mem_secs,
        };
        TimeNs::from_secs_f64(secs) + KERNEL_RAMP
    }

    /// Total latency of a kernel sequence (no overlap within a stream).
    pub fn sequence_latency<'a, I>(&self, kinds: I) -> TimeNs
    where
        I: IntoIterator<Item = &'a KernelKind>,
    {
        kinds.into_iter().map(|k| self.kernel_latency(k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dev() -> DeviceModel {
        DeviceModel::new(GpuSpec::a100_40gb())
    }

    #[test]
    fn large_gemm_approaches_peak_efficiency() {
        // 8k³ GEMM: 2·8192³ = 1.1e12 FLOPs; at ~70 % of 312 TFLOPS ≈ 5 ms.
        let eff = dev().gemm_efficiency(8192, 8192, 8192, 1);
        assert!(eff > 0.63, "eff = {eff}");
        let t = dev().kernel_latency(&KernelKind::Gemm { m: 8192, n: 8192, k: 8192, batch: 1 });
        let secs = t.as_secs_f64();
        assert!((3.5e-3..6e-3).contains(&secs), "latency {secs}s");
    }

    #[test]
    fn wave_quantization_penalizes_one_extra_tile() {
        let d = dev();
        // 108 tiles fill the 108 SMs exactly; a 109th tile forces a second,
        // nearly-empty wave, halving tensor-core efficiency for ~1 % more
        // FLOPs.
        let full_wave = d.gemm_efficiency(108 * 128, 128, 4096, 1);
        let spill = d.gemm_efficiency(108 * 128 + 1, 128, 4096, 1);
        assert!(spill < 0.6 * full_wave, "full {full_wave}, spill {spill}");
    }

    #[test]
    fn short_k_is_inefficient() {
        let d = dev();
        // k = 64 cannot hide the MMA pipeline latency: roughly half the
        // deep-k efficiency.
        assert!(
            d.gemm_efficiency(4096, 4096, 64, 1) < 0.6 * d.gemm_efficiency(4096, 4096, 4096, 1)
        );
    }

    #[test]
    fn elementwise_is_bandwidth_bound() {
        // 1 GiB moved at 0.8 × 1.555 TB/s ≈ 863 µs.
        let t = dev().kernel_latency(&KernelKind::Elementwise { bytes: 1 << 30 });
        let secs = t.as_secs_f64();
        assert!((7e-4..1.1e-3).contains(&secs), "latency {secs}s");
    }

    #[test]
    fn every_kernel_pays_ramp_cost() {
        let t = dev().kernel_latency(&KernelKind::Elementwise { bytes: 1 });
        assert!(t >= TimeNs::from_micros(2));
    }

    #[test]
    fn sequence_latency_sums() {
        let d = dev();
        let ks = [
            KernelKind::Elementwise { bytes: 1 << 20 },
            KernelKind::Softmax { rows: 1024, cols: 1024 },
        ];
        assert_eq!(
            d.sequence_latency(ks.iter()),
            d.kernel_latency(&ks[0]) + d.kernel_latency(&ks[1])
        );
    }

    proptest! {
        #[test]
        fn efficiency_is_a_valid_fraction(
            m in 1u64..16384, n in 1u64..16384, k in 1u64..16384, b in 1u64..64,
        ) {
            let eff = dev().gemm_efficiency(m, n, k, b);
            prop_assert!(eff > 0.0 && eff <= GEMM_PEAK_EFFICIENCY + 1e-12);
        }

        #[test]
        fn latency_monotonic_in_bytes(a in 1u64..1_000_000_000, b in 1u64..1_000_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let d = dev();
            let small = d.kernel_latency(&KernelKind::Elementwise { bytes: lo });
            let large = d.kernel_latency(&KernelKind::Elementwise { bytes: hi });
            prop_assert!(small <= large);
        }

        #[test]
        fn gemm_latency_positive_and_finite(
            m in 1u64..8192, n in 1u64..8192, k in 1u64..8192,
        ) {
            let t = dev().kernel_latency(&KernelKind::Gemm { m, n, k, batch: 1 });
            prop_assert!(t > TimeNs::ZERO);
            prop_assert!(t < TimeNs::from_secs(60));
        }
    }
}
