//! The ground-truth fidelity layer ("measured" systems stand-in).
//!
//! The paper validates vTrain against real measured training runs and
//! attributes its prediction error to specific mechanisms (§IV):
//!
//! * NCCL primitives are on average ~30 % slower during real training than
//!   in the isolated setting they were profiled in — most pronounced under
//!   tensor parallelism (two All-Reduces per layer per pass);
//! * kernel-launch latencies that the lookup-table replay ignores;
//! * straggler GPU nodes at synchronization points;
//! * interference between data-parallel groups sharing network links.
//!
//! [`NoiseModel`] injects exactly these mechanisms, deterministically (all
//! randomness is hashed from `(seed, id)`, so the same configuration always
//! "measures" the same time — mirroring the paper's observation that kernel
//! execution times exhibit little run-to-run variance).

use serde::{Deserialize, Serialize};
use vtrain_model::TimeNs;

/// Magnitudes of the emulated real-system effects.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Seed for all deterministic pseudo-randomness.
    pub seed: u64,
    /// Mean fractional slow-down of collectives running concurrently with
    /// compute (the paper reports ≈ 0.30).
    pub comm_inflation: f64,
    /// Log-normal σ of per-kernel execution-time jitter.
    pub jitter_sigma: f64,
    /// Log-normal σ of per-node straggler slow-down sampled once per node.
    pub straggler_sigma: f64,
    /// Fractional slow-down added per *additional* data-parallel group
    /// sharing a node's inter-node links (ToR interference, §IV).
    pub congestion_per_group: f64,
    /// Host-side launch overhead added to every kernel.
    pub launch_overhead: TimeNs,
    /// Log-normal σ of the per-configuration iteration-level bias (runtime
    /// framework effects a kernel-level replay cannot see: dataloader
    /// stalls, allocator behaviour, NCCL channel formation). Grows with the
    /// node count — the paper's multi-node error (14.73 %) is nearly twice
    /// its single-node error (8.37 %) for exactly this reason.
    pub iteration_bias_sigma: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            seed: 0x5eed_cafe,
            comm_inflation: 0.30,
            jitter_sigma: 0.03,
            straggler_sigma: 0.015,
            congestion_per_group: 0.05,
            // Effective serialized cost per launch: CUDA enqueues pipeline
            // with execution, so the visible gap is well under the ~4 µs
            // host-side launch latency.
            launch_overhead: TimeNs::from_nanos(1200),
            iteration_bias_sigma: 0.055,
        }
    }
}

/// Deterministic perturbation oracle implementing [`NoiseConfig`].
#[derive(Clone, Debug)]
pub struct NoiseModel {
    cfg: NoiseConfig,
}

/// SplitMix64 — tiny, high-quality 64-bit mixer (public domain algorithm).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl NoiseModel {
    /// Creates the oracle.
    pub fn new(cfg: NoiseConfig) -> Self {
        NoiseModel { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &NoiseConfig {
        &self.cfg
    }

    /// Uniform sample in `[0, 1)` keyed by `(seed, id, lane)`.
    fn u01(&self, id: u64, lane: u64) -> f64 {
        let h = splitmix64(self.cfg.seed ^ splitmix64(id ^ lane.rotate_left(17)));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard-normal sample keyed by `(seed, id, lane)` (Box–Muller).
    fn normal(&self, id: u64, lane: u64) -> f64 {
        let u1 = self.u01(id, lane).max(f64::MIN_POSITIVE);
        let u2 = self.u01(id, lane ^ 0xABCD_EF01);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal multiplicative factor `exp(σ·z)` keyed by `id`.
    fn lognormal(&self, id: u64, lane: u64, sigma: f64) -> f64 {
        (sigma * self.normal(id, lane)).exp()
    }

    /// The "measured" duration of a compute kernel: clean latency × jitter,
    /// plus the host launch overhead the clean replay ignores.
    pub fn compute_time(&self, task_id: u64, clean: TimeNs) -> TimeNs {
        clean.scale(self.lognormal(task_id, 1, self.cfg.jitter_sigma)) + self.cfg.launch_overhead
    }

    /// The "measured" duration of a communication operation.
    ///
    /// `overlaps_compute` marks collectives issued while the owning GPU has
    /// concurrent kernel work (TP All-Reduces inside a layer, bucketed DP
    /// All-Reduces during backward); these suffer the ~30 % inflation.
    /// `concurrent_groups` is the number of data-parallel groups sharing
    /// this GPU's node uplinks (> 1 only when `t <` GPUs-per-node spreads
    /// several DP groups across one node).
    pub fn comm_time(
        &self,
        task_id: u64,
        clean: TimeNs,
        overlaps_compute: bool,
        concurrent_groups: usize,
    ) -> TimeNs {
        let mut factor = self.lognormal(task_id, 2, self.cfg.jitter_sigma);
        if overlaps_compute {
            factor *= 1.0 + self.cfg.comm_inflation;
        }
        if concurrent_groups > 1 {
            factor *= 1.0 + self.cfg.congestion_per_group * (concurrent_groups - 1) as f64;
        }
        clean.scale(factor) + self.cfg.launch_overhead
    }

    /// Multiplicative straggler slow-down of a node (≥ 1; the slowest node
    /// paces every synchronization point).
    pub fn straggler_factor(&self, node_id: u64) -> f64 {
        1.0 + (self.lognormal(node_id, 3, self.cfg.straggler_sigma) - 1.0).abs()
    }

    /// The effective synchronization slow-down across `nodes` nodes: the
    /// maximum straggler factor among them.
    pub fn sync_straggler_factor(&self, nodes: usize) -> f64 {
        (0..nodes as u64).map(|n| self.straggler_factor(n)).fold(1.0, f64::max)
    }

    /// Per-configuration multiplicative iteration bias: a log-normal with a
    /// mild positive drift (framework overheads add time on average, but
    /// individual configurations scatter on both sides, as in the paper's
    /// Fig. 9 scatter plots). σ grows logarithmically with the node count,
    /// reproducing the error structure (multi-node scatter ≈ 2×
    /// single-node).
    pub fn iteration_bias(&self, config_key: u64, nodes: usize) -> f64 {
        let sigma = self.cfg.iteration_bias_sigma * (1.0 + 0.45 * (nodes.max(1) as f64).ln());
        (sigma * self.normal(config_key, 4) + 0.5 * sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NoiseModel {
        NoiseModel::new(NoiseConfig::default())
    }

    #[test]
    fn perturbations_are_deterministic() {
        let a = model();
        let b = model();
        let clean = TimeNs::from_micros(500);
        for id in 0..100 {
            assert_eq!(a.compute_time(id, clean), b.compute_time(id, clean));
            assert_eq!(a.comm_time(id, clean, true, 4), b.comm_time(id, clean, true, 4));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = NoiseModel::new(NoiseConfig { seed: 1, ..NoiseConfig::default() });
        let b = NoiseModel::new(NoiseConfig { seed: 2, ..NoiseConfig::default() });
        let clean = TimeNs::from_millis(3);
        let differs = (0..32).any(|id| a.compute_time(id, clean) != b.compute_time(id, clean));
        assert!(differs);
    }

    #[test]
    fn jitter_is_small_and_centered() {
        let m = model();
        let clean = TimeNs::from_millis(10);
        let mean: f64 = (0..2000)
            .map(|id| m.compute_time(id, clean).as_secs_f64() / clean.as_secs_f64())
            .sum::<f64>()
            / 2000.0;
        // jitter σ = 3 %, launch overhead 4 µs on 10 ms ⇒ mean ratio ≈ 1.0
        assert!((mean - 1.0).abs() < 0.01, "mean ratio {mean}");
    }

    #[test]
    fn overlap_inflates_comm_by_about_thirty_percent() {
        let m = model();
        let clean = TimeNs::from_millis(5);
        let ratio: f64 = (0..500)
            .map(|id| {
                m.comm_time(id, clean, true, 1).as_secs_f64()
                    / m.comm_time(id, clean, false, 1).as_secs_f64()
            })
            .sum::<f64>()
            / 500.0;
        assert!((ratio - 1.30).abs() < 0.02, "inflation ratio {ratio}");
    }

    #[test]
    fn congestion_grows_with_groups() {
        let m = model();
        let clean = TimeNs::from_millis(5);
        let one = m.comm_time(7, clean, false, 1);
        let four = m.comm_time(7, clean, false, 4);
        assert!(four > one);
    }

    #[test]
    fn straggler_factor_at_least_one_and_monotone_in_nodes() {
        let m = model();
        for n in 0..64 {
            assert!(m.straggler_factor(n) >= 1.0);
        }
        assert!(m.sync_straggler_factor(64) >= m.sync_straggler_factor(2));
    }

    #[test]
    fn iteration_bias_is_deterministic_and_positive() {
        let m = model();
        for key in 0..200u64 {
            let b = m.iteration_bias(key, 8);
            assert!(b > 0.0 && b.is_finite());
            assert_eq!(b, m.iteration_bias(key, 8));
        }
    }

    #[test]
    fn iteration_bias_scatter_grows_with_nodes() {
        // Multi-node deployments scatter roughly twice as wide as
        // single-node ones (the paper's Fig. 9 error structure).
        let m = model();
        let spread = |nodes: usize| {
            (0..500u64).map(|k| (m.iteration_bias(k, nodes) - 1.0).abs()).sum::<f64>() / 500.0
        };
        let single = spread(1);
        let multi = spread(64);
        assert!(
            multi > 1.5 * single,
            "multi-node spread {multi:.4} should dwarf single-node {single:.4}"
        );
    }

    #[test]
    fn iteration_bias_drifts_positive_on_average() {
        let m = model();
        let mean: f64 = (0..1000u64).map(|k| m.iteration_bias(k, 8)).sum::<f64>() / 1000.0;
        assert!(mean > 1.0, "mean bias {mean:.4} should exceed 1 (overheads add time)");
    }
}
