//! # vtrain-gpu
//!
//! GPU device model and ground-truth cluster emulation substrate for vTrain.
//!
//! The published vTrain profiles CUDA kernels on real NVIDIA A100 GPUs via
//! CUPTI and validates against measured multi-GPU training runs. Neither a
//! GPU nor CUPTI is available to this reproduction, so this crate supplies
//! the two substitutes documented in `DESIGN.md`:
//!
//! 1. [`DeviceModel`] — a deterministic, analytical A100 kernel-latency
//!    model (roofline GEMMs with tile/wave quantization across 108 SMs,
//!    memory-bound elementwise/normalization kernels). The profiling module
//!    "executes" operators against this model exactly where the paper's
//!    profiler executes them on hardware.
//! 2. [`NoiseModel`] — the *ground-truth fidelity layer* that stands in for
//!    the real measured systems: it injects the discrepancy mechanisms the
//!    paper itself blames its prediction error on (§IV): ~30 % NCCL latency
//!    inflation when collectives overlap compute, per-kernel launch
//!    overheads, run-to-run jitter, straggler nodes, and inter-node network
//!    interference between data-parallel groups.
//!
//! Collective-communication latency models (ring All-Reduce, the NCCL
//! `S/B · 2(n-1)/n` analytical form of the paper's Equation (1)) live in
//! [`comm`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
mod kernels;
mod latency;
mod noise;

pub use kernels::{Kernel, KernelKind};
pub use latency::DeviceModel;
pub use noise::{NoiseConfig, NoiseModel};
