//! CUDA-kernel-shaped work descriptions.
//!
//! vTrain's operator-to-task lookup table maps each high-level operator to
//! the list of low-level CUDA kernels (tasks) it launches (paper Fig. 4).
//! [`KernelKind`] describes the shape of such a task precisely enough for
//! the analytical device model to assign it a latency, and
//! [`Kernel::name`] renders a CUPTI-style kernel name so traces look like
//! the ones the paper collects (e.g. `ampere_fp16_..._128x128_tn`).

use serde::{Deserialize, Serialize};

/// Shape of a single GPU kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Dense FP16 tensor-core GEMM: `batch` independent `m×k · k×n`
    /// products.
    Gemm {
        /// Rows of the output tile.
        m: u64,
        /// Columns of the output tile.
        n: u64,
        /// Reduction dimension.
        k: u64,
        /// Batch count (1 for plain GEMM, `heads·micro_batch` for
        /// attention score/context GEMMs).
        batch: u64,
    },
    /// Memory-bound elementwise kernel (bias, residual add, GeLU, dropout,
    /// scatter-add); cost is driven by bytes moved.
    Elementwise {
        /// Total bytes read + written.
        bytes: u64,
    },
    /// Row-wise softmax over a `rows × cols` matrix (FP16).
    Softmax {
        /// Independent rows.
        rows: u64,
        /// Elements per row.
        cols: u64,
    },
    /// LayerNorm over a `rows × cols` activation (FP16).
    LayerNorm {
        /// Independent rows.
        rows: u64,
        /// Elements per row.
        cols: u64,
    },
    /// Embedding-table gather + positional add for `tokens` tokens.
    EmbeddingLookup {
        /// Tokens looked up.
        tokens: u64,
        /// Hidden dimension.
        hidden: u64,
    },
    /// Fused Adam optimizer step over `params` parameters (mixed
    /// precision: FP32 master weights and moments, FP16 copy).
    AdamUpdate {
        /// Parameters updated.
        params: u64,
    },
}

impl KernelKind {
    /// Floating-point operations this kernel performs (2·m·n·k per GEMM
    /// element; elementwise/normalization kernels count a handful of ops
    /// per element but are memory bound anyway).
    pub fn flops(&self) -> f64 {
        match *self {
            KernelKind::Gemm { m, n, k, batch } => {
                2.0 * m as f64 * n as f64 * k as f64 * batch as f64
            }
            KernelKind::Elementwise { bytes } => bytes as f64 / 2.0,
            KernelKind::Softmax { rows, cols } => 5.0 * rows as f64 * cols as f64,
            KernelKind::LayerNorm { rows, cols } => 8.0 * rows as f64 * cols as f64,
            KernelKind::EmbeddingLookup { tokens, hidden } => tokens as f64 * hidden as f64,
            KernelKind::AdamUpdate { params } => 12.0 * params as f64,
        }
    }

    /// Bytes of HBM traffic this kernel generates.
    pub fn bytes(&self) -> f64 {
        match *self {
            KernelKind::Gemm { m, n, k, batch } => {
                // FP16 operands + output; each operand read once (tiled reuse
                // captured by the device model's efficiency term).
                2.0 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64)
                    * batch as f64
            }
            KernelKind::Elementwise { bytes } => bytes as f64,
            // read + write FP16, plus one extra pass for the reduction.
            KernelKind::Softmax { rows, cols } => 6.0 * rows as f64 * cols as f64,
            KernelKind::LayerNorm { rows, cols } => 6.0 * rows as f64 * cols as f64,
            KernelKind::EmbeddingLookup { tokens, hidden } => 6.0 * tokens as f64 * hidden as f64,
            // w(4+4) m(4+4) v(4+4) g(2) + fp16 w copy(2) per param.
            KernelKind::AdamUpdate { params } => 28.0 * params as f64,
        }
    }
}

/// A named kernel as it would appear in a CUPTI trace.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Kernel {
    /// The kernel's shape (drives its latency).
    pub kind: KernelKind,
}

impl Kernel {
    /// Creates a kernel from its shape.
    pub fn new(kind: KernelKind) -> Self {
        Kernel { kind }
    }

    /// A CUPTI-style kernel name, e.g.
    /// `ampere_fp16_s16816gemm_fp16_128x128_ldg8_f2f_tn_b1_m4096_n4096_k1024`.
    pub fn name(&self) -> String {
        match self.kind {
            KernelKind::Gemm { m, n, k, batch } => {
                format!("ampere_fp16_s16816gemm_fp16_128x128_ldg8_f2f_tn_b{batch}_m{m}_n{n}_k{k}")
            }
            KernelKind::Elementwise { bytes } => {
                format!("vectorized_elementwise_kernel_v4_{bytes}b")
            }
            KernelKind::Softmax { rows, cols } => {
                format!("softmax_warp_forward_fp16_r{rows}_c{cols}")
            }
            KernelKind::LayerNorm { rows, cols } => {
                format!("cunn_layer_norm_fp16_r{rows}_c{cols}")
            }
            KernelKind::EmbeddingLookup { tokens, hidden } => {
                format!("indexSelectLargeIndex_t{tokens}_h{hidden}")
            }
            KernelKind::AdamUpdate { params } => format!("multi_tensor_adam_p{params}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_follow_2mnk() {
        let k = KernelKind::Gemm { m: 128, n: 256, k: 64, batch: 2 };
        assert_eq!(k.flops(), 2.0 * 128.0 * 256.0 * 64.0 * 2.0);
    }

    #[test]
    fn bytes_are_positive_for_all_kinds() {
        let kinds = [
            KernelKind::Gemm { m: 16, n: 16, k: 16, batch: 1 },
            KernelKind::Elementwise { bytes: 1024 },
            KernelKind::Softmax { rows: 8, cols: 8 },
            KernelKind::LayerNorm { rows: 8, cols: 8 },
            KernelKind::EmbeddingLookup { tokens: 8, hidden: 8 },
            KernelKind::AdamUpdate { params: 100 },
        ];
        for k in kinds {
            assert!(k.bytes() > 0.0, "{k:?}");
            assert!(k.flops() > 0.0, "{k:?}");
        }
    }

    #[test]
    fn names_encode_shape() {
        let k = Kernel::new(KernelKind::Gemm { m: 4096, n: 1024, k: 512, batch: 1 });
        let name = k.name();
        assert!(name.contains("m4096") && name.contains("n1024") && name.contains("k512"));
        assert!(name.starts_with("ampere_fp16"));
    }

    #[test]
    fn adam_moves_28_bytes_per_param() {
        let k = KernelKind::AdamUpdate { params: 10 };
        assert_eq!(k.bytes(), 280.0);
    }
}
